#include "cluster/hierarchical_session.h"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.h"
#include "symc/kdf.h"
#include "symc/sealed_box.h"

namespace idgka::cluster {

namespace {

constexpr int kMaxRekeyRetransmits = 16;

std::uint64_t sealed_blocks(std::size_t bytes) { return bytes / symc::Aes128::kBlockSize; }

}  // namespace

HierarchicalSession::HierarchicalSession(gka::Authority& authority, ClusterConfig config,
                                         std::vector<std::uint32_t> ids, std::uint64_t seed)
    : authority_(authority), config_(std::move(config)), seed_(seed) {
  config_.validate();
#if IDGKA_OBS
  if (!config_.label.empty()) {
    obs::Registry& reg = obs::Registry::global();
    labeled_rekeys_ = &reg.counter("cluster.rekeys", config_.label);
    labeled_rekey_retries_ = &reg.counter("cluster.rekey_retries", config_.label);
  }
#endif
  if (ids.size() < 2) {
    throw std::invalid_argument("HierarchicalSession: need at least 2 members");
  }
  {
    std::set<std::uint32_t> unique(ids.begin(), ids.end());
    if (unique.size() != ids.size()) {
      throw std::invalid_argument("HierarchicalSession: duplicate member id");
    }
  }
  // Balanced sharding into k clusters of ~target_size() members each. k is
  // capped so no shard underflows min_cluster and floored so none exceeds
  // max_cluster (a single cluster is exempt from the lower bound).
  const std::size_t n = ids.size();
  std::size_t k = (n + config_.target_size() - 1) / config_.target_size();
  k = std::min(k, std::max<std::size_t>(1, n / config_.min_cluster));
  k = std::max(k, (n + config_.max_cluster - 1) / config_.max_cluster);
  const std::size_t base = n / k;
  const std::size_t extra = n % k;
  auto it = ids.begin();
  for (std::size_t c = 0; c < k; ++c) {
    const std::size_t take = base + (c < extra ? 1 : 0);
    std::vector<std::uint32_t> shard(it, it + static_cast<std::ptrdiff_t>(take));
    it += static_cast<std::ptrdiff_t>(take);
    clusters_.push_back(std::make_unique<gka::GroupSession>(
        authority_, config_.scheme, std::move(shard), next_seed(), config_.loss_rate));
  }
}

EventSummary HierarchicalSession::form() {
  OBS_SPAN_ARG("cluster.form", "cluster", clusters_.size());
  EventSummary summary;
  for (auto& cluster : clusters_) {
    if (!cluster->form().success) return summary;  // success stays false
    ++summary.clusters_touched;
  }
  update_head_tier();
  rekey_and_distribute();
  summary.success = true;
  summary.epoch = epoch_;
  return summary;
}

EventSummary HierarchicalSession::join(std::uint32_t id) {
  queue_.push({EventType::kJoin, id});
  return flush();
}

EventSummary HierarchicalSession::leave(std::uint32_t id) {
  queue_.push({EventType::kLeave, id});
  return flush();
}

EventSummary HierarchicalSession::partition(const std::vector<std::uint32_t>& leaver_ids) {
  for (const std::uint32_t id : leaver_ids) queue_.push({EventType::kLeave, id});
  return flush();
}

std::optional<EventSummary> HierarchicalSession::enqueue_join(std::uint32_t id) {
  queue_.push({EventType::kJoin, id});
  if (queue_.size() >= config_.batch_capacity) return flush();
  return std::nullopt;
}

std::optional<EventSummary> HierarchicalSession::enqueue_leave(std::uint32_t id) {
  queue_.push({EventType::kLeave, id});
  if (queue_.size() >= config_.batch_capacity) return flush();
  return std::nullopt;
}

EventSummary HierarchicalSession::flush() {
  EventSummary summary;
  summary.success = true;
  summary.epoch = epoch_;
  const std::vector<Event> events = queue_.drain();
  if (events.empty()) return summary;
  OBS_SPAN_ARG("cluster.flush", "cluster", events.size());
  if (group_key_.is_zero()) throw std::logic_error("HierarchicalSession: flush before form()");

  std::vector<std::uint32_t> joins;
  std::vector<std::uint32_t> leaves;
  for (const Event& e : events) {
    (e.type == EventType::kJoin ? joins : leaves).push_back(e.id);
  }
  for (const std::uint32_t id : leaves) {
    if (!contains(id)) throw std::invalid_argument("leave: id not in group");
  }
  if (size() - leaves.size() < 2) {
    throw std::invalid_argument("flush: group would drop below 2 members");
  }
  // Joins must be validated up front too: rejecting one mid-batch (after the
  // leaves were already applied) would abandon the round half-rekeyed.
  for (const std::uint32_t id : joins) {
    const bool departing = std::find(leaves.begin(), leaves.end(), id) != leaves.end();
    if (contains(id) && !departing) throw std::invalid_argument("join: id already in group");
  }
  summary.events_applied = events.size();

  apply_leaves(leaves, summary);
  apply_joins(joins, summary);
  rebalance(summary);
  update_head_tier();
  rekey_and_distribute();
  summary.epoch = epoch_;
  return summary;
}

EventSummary HierarchicalSession::merge(HierarchicalSession& other) {
  OBS_SPAN_ARG("cluster.merge", "cluster", other.size());
  if (&other == this) throw std::invalid_argument("merge: cannot merge with self");
  if (&other.authority_ != &authority_ || other.config_.scheme != config_.scheme) {
    throw std::invalid_argument("merge: sessions must share authority and scheme");
  }
  if (group_key_.is_zero() || other.group_key_.is_zero()) {
    throw std::logic_error("merge: both sessions must be formed");
  }
  for (const std::uint32_t id : other.member_ids()) {
    if (contains(id)) throw std::invalid_argument("merge: member id present in both groups");
  }
  other.flush();  // settle any pending events on the other side first

  // Adopt the other hierarchy's clusters wholesale — their leaf rings stay
  // intact; only the head tier is renegotiated. Adopted networks switch to
  // this hierarchy's network hook (timed driver, if any).
  for (auto& cluster : other.clusters_) {
    cluster->set_network_hook(network_hook_);
    clusters_.push_back(std::move(cluster));
  }
  other.clusters_.clear();
  retired_ += other.retired_;
  other.retired_ = energy::Ledger{};
  for (const auto& [id, ledger] : other.retired_by_member_) retired_by_member_[id] += ledger;
  other.retired_by_member_.clear();
  if (other.head_tier_) {
    for (const std::uint32_t id : other.head_tier_->member_ids()) {
      retire_member(id, other.head_tier_->ledger(id));
    }
    other.head_tier_.reset();
  }
  if (other.head_hier_) {
    // Fold the nested tier's complete history straight into this side's
    // retired pots (other's pots were already drained above).
    for (const auto& [id, ledger] : other.head_hier_->lifetime_ledgers()) {
      retire_member(id, ledger);
    }
    other.head_hier_.reset();
  }
  other.member_view_.clear();
  other.group_key_ = BigInt{};

  EventSummary summary;
  summary.success = true;
  rebalance(summary);
  update_head_tier();
  rekey_and_distribute();
  summary.epoch = epoch_;
  return summary;
}

void HierarchicalSession::apply_leaves(const std::vector<std::uint32_t>& leaver_ids,
                                       EventSummary& summary) {
  if (leaver_ids.empty()) return;
  std::vector<std::vector<std::uint32_t>> per(clusters_.size());
  for (const std::uint32_t id : leaver_ids) {
    bool found = false;
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      const auto ids = clusters_[i]->member_ids();
      if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
        per[i].push_back(id);
        found = true;
        break;
      }
    }
    if (!found) throw std::invalid_argument("leave: id not in group");
  }

  // A cluster whose survivors would drop below 2 cannot run Leave/Partition
  // on its own ring; fold it into the neighbour with the most survivors
  // first, then depart from the combined ring.
  for (;;) {
    std::size_t victim = clusters_.size();
    for (std::size_t i = 0; i < clusters_.size(); ++i) {
      if (!per[i].empty() && clusters_[i]->size() - per[i].size() < 2) {
        victim = i;
        break;
      }
    }
    if (victim == clusters_.size() || clusters_.size() < 2) break;
    std::size_t target = clusters_.size();
    std::size_t best_survivors = 0;
    for (std::size_t j = 0; j < clusters_.size(); ++j) {
      if (j == victim) continue;
      const std::size_t survivors = clusters_[j]->size() - per[j].size();
      if (target == clusters_.size() || survivors > best_survivors) {
        target = j;
        best_survivors = survivors;
      }
    }
    if (!clusters_[target]->merge(*clusters_[victim]).success) {
      throw std::runtime_error("apply_leaves: cluster merge failed");
    }
    ++summary.merges;
    ++summary.clusters_touched;
    per[target].insert(per[target].end(), per[victim].begin(), per[victim].end());
    clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(victim));
    per.erase(per.begin() + static_cast<std::ptrdiff_t>(victim));
  }

  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    if (per[i].empty()) continue;
    for (const std::uint32_t id : per[i]) {
      retire_member(id, clusters_[i]->ledger(id));
      member_view_.erase(id);
    }
    const gka::RunResult result = per[i].size() == 1 ? clusters_[i]->leave(per[i].front())
                                                     : clusters_[i]->partition(per[i]);
    if (!result.success) throw std::runtime_error("apply_leaves: leaf rekey failed");
    ++summary.clusters_touched;
  }
}

void HierarchicalSession::apply_joins(const std::vector<std::uint32_t>& joiner_ids,
                                      EventSummary& summary) {
  for (const std::uint32_t id : joiner_ids) {
    if (contains(id)) throw std::invalid_argument("join: id already in group");
    // Smallest cluster takes the newcomer (keeps shards balanced and delays
    // the next split as long as possible).
    std::size_t best = 0;
    for (std::size_t i = 1; i < clusters_.size(); ++i) {
      if (clusters_[i]->size() < clusters_[best]->size()) best = i;
    }
    if (!clusters_[best]->join(id).success) {
      throw std::runtime_error("apply_joins: leaf join failed");
    }
    ++summary.clusters_touched;
  }
}

void HierarchicalSession::rebalance(EventSummary& summary) {
  // Merge underflowing clusters into the smallest neighbour.
  while (clusters_.size() > 1) {
    std::size_t smallest = 0;
    for (std::size_t i = 1; i < clusters_.size(); ++i) {
      if (clusters_[i]->size() < clusters_[smallest]->size()) smallest = i;
    }
    if (clusters_[smallest]->size() >= config_.min_cluster) break;
    std::size_t target = smallest == 0 ? 1 : 0;
    for (std::size_t j = 0; j < clusters_.size(); ++j) {
      if (j != smallest && clusters_[j]->size() < clusters_[target]->size()) target = j;
    }
    if (!clusters_[target]->merge(*clusters_[smallest]).success) {
      throw std::runtime_error("rebalance: cluster merge failed");
    }
    clusters_.erase(clusters_.begin() + static_cast<std::ptrdiff_t>(smallest));
    ++summary.merges;
    ++summary.clusters_touched;
  }
  // Split oversized clusters into halves (each half >= min_cluster because
  // max_cluster >= 2 * min_cluster).
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    while (clusters_[i]->size() > config_.max_cluster) {
      const auto ids = clusters_[i]->member_ids();
      const std::vector<std::uint32_t> moved(ids.begin() + static_cast<std::ptrdiff_t>(ids.size() / 2),
                                             ids.end());
      // split() re-forms the moved members from scratch; their per-member
      // ledgers are retired into the lifetime total first.
      for (const std::uint32_t id : moved) retire_member(id, clusters_[i]->ledger(id));
      clusters_.push_back(
          std::make_unique<gka::GroupSession>(clusters_[i]->split(moved, next_seed())));
      summary.splits += 1;
      summary.clusters_touched += 2;
    }
  }
}

void HierarchicalSession::update_head_tier() {
  if (clusters_.size() < 2) {
    if (head_tier_) {
      retire_ledgers(*head_tier_);
      head_tier_.reset();
    }
    if (head_hier_) dissolve_nested();
    return;
  }
  const std::vector<std::uint32_t> desired = cluster_heads();
  const bool nest = want_nested(desired.size());
  if ((nest && !head_hier_) || (!nest && !head_tier_)) {
    // First build, or the head set crossed max_cluster and the tier shape
    // changes (flat ring <-> nested hierarchy): renegotiate from scratch.
    rebuild_head_tier();
    return;
  }
  const std::vector<std::uint32_t> current =
      head_hier_ ? head_hier_->member_ids() : head_tier_->member_ids();
  const std::set<std::uint32_t> current_set(current.begin(), current.end());
  const std::set<std::uint32_t> desired_set(desired.begin(), desired.end());
  std::vector<std::uint32_t> added;
  std::vector<std::uint32_t> removed;
  for (const std::uint32_t id : desired) {
    if (!current_set.contains(id)) added.push_back(id);
  }
  for (const std::uint32_t id : current) {
    if (!desired_set.contains(id)) removed.push_back(id);
  }
  if (added.empty() && removed.empty()) {
    // Tier membership unchanged, but leaf events happened below: re-execute
    // the tier GKA so the epoch key cannot be derived by departed members
    // who still know the old tier key. A nested tier re-forms recursively
    // (every ring on the path refreshes and re-seals downward).
    const bool fresh = head_hier_ ? head_hier_->form().success : head_tier_->form().success;
    if (!fresh) throw std::runtime_error("update_head_tier: tier rekey failed");
    return;
  }
  if (head_hier_) {
    // One batched tier round: the nested session applies joins + leaves,
    // rebalances its own clusters, recursively updates its tiers and
    // re-seals its tier key downward. Departed heads' tier energy is
    // retired inside the nested session (see retired_ledger).
    for (const std::uint32_t id : added) head_hier_->queue_.push({EventType::kJoin, id});
    for (const std::uint32_t id : removed) head_hier_->queue_.push({EventType::kLeave, id});
    head_hier_->flush();
    return;
  }
  // Incremental update: joins first so the tier never drops below 2 mid-way.
  for (const std::uint32_t id : added) {
    if (!head_tier_->join(id).success) {
      throw std::runtime_error("update_head_tier: head join failed");
    }
  }
  for (const std::uint32_t id : removed) {
    retire_member(id, head_tier_->ledger(id));
    if (!head_tier_->leave(id).success) {
      throw std::runtime_error("update_head_tier: head leave failed");
    }
  }
}

void HierarchicalSession::rebuild_head_tier() {
  if (head_tier_) {
    retire_ledgers(*head_tier_);
    head_tier_.reset();
  }
  if (head_hier_) dissolve_nested();
  const std::vector<std::uint32_t> heads = cluster_heads();
  if (want_nested(heads.size())) {
    head_hier_ =
        std::make_unique<HierarchicalSession>(authority_, nested_config(), heads, next_seed());
    if (network_hook_) head_hier_->set_network_hook(network_hook_);
    if (!head_hier_->form().success) {
      throw std::runtime_error("rebuild_head_tier: nested tier agreement failed");
    }
    return;
  }
  head_tier_ = std::make_unique<gka::GroupSession>(authority_, config_.scheme, heads,
                                                   next_seed(), config_.loss_rate);
  if (network_hook_) head_tier_->set_network_hook(network_hook_);
  if (!head_tier_->form().success) {
    throw std::runtime_error("rebuild_head_tier: tier key agreement failed");
  }
}

bool HierarchicalSession::want_nested(std::size_t head_count) const {
  return head_count > config_.max_cluster && (config_.max_depth == 0 || config_.max_depth > 2);
}

ClusterConfig HierarchicalSession::nested_config() const {
  ClusterConfig cfg = config_;
  cfg.label.clear();
  if (cfg.max_depth != 0) --cfg.max_depth;
  return cfg;
}

const BigInt& HierarchicalSession::tier_key() const {
  if (head_hier_) return head_hier_->group_key();
  return head_tier_ ? head_tier_->key() : clusters_.front()->key();
}

void HierarchicalSession::dissolve_nested() {
  for (const auto& [id, ledger] : head_hier_->lifetime_ledgers()) retire_member(id, ledger);
  head_hier_.reset();
}

energy::Ledger HierarchicalSession::retired_ledger(std::uint32_t id) const {
  energy::Ledger total;
  const auto it = retired_by_member_.find(id);
  if (it != retired_by_member_.end()) total += it->second;
  if (head_hier_ && !head_hier_->contains(id)) total += head_hier_->retired_ledger(id);
  return total;
}

std::map<std::uint32_t, energy::Ledger> HierarchicalSession::lifetime_ledgers() const {
  std::map<std::uint32_t, energy::Ledger> out;
  const std::vector<std::uint32_t> ids = member_ids();
  const std::set<std::uint32_t> current(ids.begin(), ids.end());
  // Current members: member_ledger already folds leaf + tier (live and
  // retired, nested tiers included) + this tier's retired tenures.
  for (const std::uint32_t id : ids) out[id] = member_ledger(id);
  // Departed members: leaf tenures were retired here, tier tenures inside
  // the nested session (when one exists) — fold both, skipping ids already
  // fully covered above.
  for (const auto& [id, ledger] : retired_by_member_) {
    if (!current.contains(id)) out[id] += ledger;
  }
  if (head_hier_) {
    for (const auto& [id, ledger] : head_hier_->lifetime_ledgers()) {
      if (!current.contains(id)) out[id] += ledger;
    }
  }
  return out;
}

void HierarchicalSession::retire_member(std::uint32_t id, const energy::Ledger& ledger) {
  retired_ += ledger;
  retired_by_member_[id] += ledger;
}

void HierarchicalSession::retire_ledgers(const gka::GroupSession& session) {
  for (const std::uint32_t id : session.member_ids()) retire_member(id, session.ledger(id));
}

void HierarchicalSession::rekey_and_distribute() {
  ++epoch_;
  OBS_SPAN_ARG("cluster.rekey", "cluster", epoch_);
  OBS_COUNT("cluster.rekeys", 1);
#if IDGKA_OBS
  if (labeled_rekeys_ != nullptr) labeled_rekeys_->add(1);
#endif
  const std::string label = "idgka-cluster-v1|epoch|" + std::to_string(epoch_);
  const auto key_bytes = symc::derive_key(tier_key(), label);
  group_key_ = BigInt::from_bytes_be(key_bytes);
  member_view_.clear();

  if (!head_tier_ && !head_hier_) {
    // Single-cluster mode: everyone already holds the leaf key and derives
    // the epoch key locally — no broadcast needed.
    gka::GroupSession& leaf = *clusters_.front();
    for (const std::uint32_t id : leaf.member_ids()) {
      leaf.mutable_ledger(id).record(energy::Op::kHashBlock);
      member_view_[id] = group_key_;
    }
    return;
  }

  for (auto& cluster : clusters_) {
    const std::vector<std::uint32_t> ids = cluster->member_ids();
    const std::uint32_t head = ids.front();
    // The head derives the epoch key from the tier key, seals it under its
    // leaf cluster key and broadcasts it downward; leaf members only run
    // symmetric decryptions.
    cluster->mutable_ledger(head).record(energy::Op::kHashBlock);
    member_view_[head] = group_key_;
    const symc::SealedBox box(cluster->key());
    const std::vector<std::uint8_t> sealed = box.seal(group_key_, head, epoch_);
    cluster->mutable_ledger(head).record(energy::Op::kSymEncBlock, sealed_blocks(sealed.size()));

    net::Message msg;
    msg.sender = head;
    msg.type = "cluster-rekey";
    msg.payload.put_blob("sealed_key", sealed);
    net::Network& network = cluster->mutable_network();
    network.broadcast(msg, ids);
    network.await_delivery();

    const auto receive = [&](std::uint32_t id) {
      for (const net::Message& m : network.drain(id)) {
        if (m.type != "cluster-rekey" || m.sender != head) continue;
        const auto& blob = m.payload.get_blob("sealed_key");
        cluster->mutable_ledger(id).record(energy::Op::kSymDecBlock, sealed_blocks(blob.size()));
        if (const auto opened = box.open(blob, head, epoch_)) {
          member_view_[id] = *opened;
          return true;
        }
      }
      return false;
    };
    std::vector<std::uint32_t> missing;
    for (const std::uint32_t id : ids) {
      if (id != head && !receive(id)) missing.push_back(id);
    }
    // Lossy leaf networks may drop the broadcast copy; the head unicasts to
    // the stragglers until everyone holds the epoch key. A timed driver's
    // retry cap overrides the built-in bound (see effective_retry_cap).
    const int retries = network.effective_retry_cap(kMaxRekeyRetransmits);
    for (int attempt = 0; attempt < retries && !missing.empty(); ++attempt) {
      OBS_COUNT("cluster.rekey_retries", 1);
#if IDGKA_OBS
      if (labeled_rekey_retries_ != nullptr) labeled_rekey_retries_->add(1);
#endif
      OBS_INSTANT_ARG("cluster.rekey_retry", "cluster", missing.size());
      for (const std::uint32_t id : missing) {
        net::Message retry = msg;
        retry.recipient = id;
        network.unicast(std::move(retry));
      }
      network.await_delivery();
      std::vector<std::uint32_t> still_missing;
      for (const std::uint32_t id : missing) {
        if (!receive(id)) still_missing.push_back(id);
      }
      missing.swap(still_missing);
    }
    if (!missing.empty()) {
      throw std::runtime_error("rekey_and_distribute: rekey delivery failed");
    }
    cluster->sync_traffic();
  }
}

const BigInt& HierarchicalSession::group_key() const {
  if (group_key_.is_zero()) throw std::logic_error("HierarchicalSession: no key yet");
  return group_key_;
}

const BigInt& HierarchicalSession::member_key_view(std::uint32_t id) const {
  const auto it = member_view_.find(id);
  if (it == member_view_.end()) {
    throw std::invalid_argument("HierarchicalSession: no key view for id");
  }
  return it->second;
}

bool HierarchicalSession::all_members_agree() const {
  if (group_key_.is_zero() || member_view_.size() != size()) return false;
  return std::all_of(member_view_.begin(), member_view_.end(),
                     [&](const auto& kv) { return kv.second == group_key_; });
}

std::size_t HierarchicalSession::size() const {
  std::size_t n = 0;
  for (const auto& cluster : clusters_) n += cluster->size();
  return n;
}

bool HierarchicalSession::contains(std::uint32_t id) const {
  for (const auto& cluster : clusters_) {
    const auto ids = cluster->member_ids();
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) return true;
  }
  return false;
}

std::vector<std::uint32_t> HierarchicalSession::member_ids() const {
  std::vector<std::uint32_t> out;
  out.reserve(size());
  for (const auto& cluster : clusters_) {
    const auto ids = cluster->member_ids();
    out.insert(out.end(), ids.begin(), ids.end());
  }
  return out;
}

std::vector<std::size_t> HierarchicalSession::cluster_sizes() const {
  std::vector<std::size_t> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) out.push_back(cluster->size());
  return out;
}

std::vector<std::uint32_t> HierarchicalSession::cluster_heads() const {
  std::vector<std::uint32_t> out;
  out.reserve(clusters_.size());
  for (const auto& cluster : clusters_) out.push_back(cluster->member_ids().front());
  return out;
}

energy::Ledger HierarchicalSession::member_ledger(std::uint32_t id) const {
  energy::Ledger total;
  bool found = false;
  for (const auto& cluster : clusters_) {
    const auto ids = cluster->member_ids();
    if (std::find(ids.begin(), ids.end(), id) != ids.end()) {
      total += cluster->ledger(id);
      found = true;
      break;
    }
  }
  if (!found) throw std::invalid_argument("HierarchicalSession::member_ledger: unknown id");
  if (head_tier_) {
    const auto heads = head_tier_->member_ids();
    if (std::find(heads.begin(), heads.end(), id) != heads.end()) {
      total += head_tier_->ledger(id);
    }
  } else if (head_hier_) {
    // Tier tenure: the nested session's lifetime view when the id is a
    // current head, its retired tenures there when it once was one.
    total += head_hier_->contains(id) ? head_hier_->member_ledger(id)
                                      : head_hier_->retired_ledger(id);
  }
  const auto rit = retired_by_member_.find(id);
  if (rit != retired_by_member_.end()) total += rit->second;
  return total;
}

std::size_t HierarchicalSession::depth() const {
  if (head_hier_) return 1 + head_hier_->depth();
  return head_tier_ ? 2 : 1;
}

std::vector<std::size_t> HierarchicalSession::tier_sizes() const {
  std::vector<std::size_t> out{size()};
  if (head_hier_) {
    const std::vector<std::size_t> nested = head_hier_->tier_sizes();
    out.insert(out.end(), nested.begin(), nested.end());
  } else if (head_tier_) {
    out.push_back(head_tier_->size());
  }
  return out;
}

void HierarchicalSession::set_network_hook(NetworkHook hook) {
  network_hook_ = std::move(hook);
  for (auto& cluster : clusters_) cluster->set_network_hook(network_hook_);
  if (head_tier_) head_tier_->set_network_hook(network_hook_);
  if (head_hier_) head_hier_->set_network_hook(network_hook_);
}

AggregateReport HierarchicalSession::report() const {
  AggregateReport rep;
  rep.members = size();
  rep.clusters = clusters_.size();
  rep.total = retired_;
  for (const auto& cluster : clusters_) {
    for (const std::uint32_t id : cluster->member_ids()) rep.total += cluster->ledger(id);
    const net::TrafficStats stats = cluster->network().total_stats();
    rep.traffic.tx_messages += stats.tx_messages;
    rep.traffic.rx_messages += stats.rx_messages;
    rep.traffic.tx_bits += stats.tx_bits;
    rep.traffic.rx_bits += stats.rx_bits;
  }
  if (head_tier_) {
    for (const std::uint32_t id : head_tier_->member_ids()) {
      rep.total += head_tier_->ledger(id);
      rep.head_tier += head_tier_->ledger(id);
    }
    const net::TrafficStats stats = head_tier_->network().total_stats();
    rep.traffic.tx_messages += stats.tx_messages;
    rep.traffic.rx_messages += stats.rx_messages;
    rep.traffic.tx_bits += stats.tx_bits;
    rep.traffic.rx_bits += stats.rx_bits;
  } else if (head_hier_) {
    // The nested tier reports recursively: live tier ledgers, its own
    // retired tenures, and every tier network's traffic.
    const AggregateReport nested = head_hier_->report();
    rep.total += nested.total;
    rep.head_tier += nested.total;
    rep.traffic.tx_messages += nested.traffic.tx_messages;
    rep.traffic.rx_messages += nested.traffic.rx_messages;
    rep.traffic.tx_bits += nested.traffic.tx_bits;
    rep.traffic.rx_bits += nested.traffic.rx_bits;
  }
  return rep;
}

}  // namespace idgka::cluster
