// In-process simulation of a broadcast wireless network.
//
// The paper's setting: nodes share a broadcast medium; every broadcast is
// received by every other registered group member, and the per-node radio
// spends transmit energy once per message and receive energy once per
// received message. The simulator is round-based (protocols drain inboxes
// between rounds), counts bits per node for the energy model, and can
// inject message loss to exercise the protocols' retransmission paths.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "mpint/random.h"
#include "net/message.h"

namespace idgka::net {

/// Per-node traffic counters (bits are paper-accounted sizes).
struct TrafficStats {
  std::uint64_t tx_messages = 0;
  std::uint64_t rx_messages = 0;
  std::uint64_t tx_bits = 0;
  std::uint64_t rx_bits = 0;
};

/// Broadcast network with per-node inboxes and optional loss injection.
class Network {
 public:
  /// `loss_rate` in [0, 1): probability that any (message, receiver) pair is
  /// dropped. Loss is deterministic under `seed`.
  explicit Network(double loss_rate = 0.0, std::uint64_t seed = 0);

  /// Registers a node; must be called before it can send or receive.
  void add_node(std::uint32_t id);
  /// Deregisters a node, discarding its pending inbox and traffic counters
  /// (departed members must not accumulate state for the lifetime of a
  /// long-churn simulation). No-op when the node is unknown.
  void remove_node(std::uint32_t id);
  [[nodiscard]] bool has_node(std::uint32_t id) const;
  /// Number of currently registered nodes.
  [[nodiscard]] std::size_t node_count() const { return inboxes_.size(); }

  /// Broadcast to an explicit receiver group (paper protocols broadcast to
  /// the current group or subgroup). The sender must not appear in `group`
  /// or is skipped if it does.
  void broadcast(const Message& msg, const std::vector<std::uint32_t>& group);

  /// Point-to-point transmission (e.g. Join Round 3 Un -> Un+1).
  void unicast(Message msg);

  /// Removes and returns all pending messages for `node`, in arrival order.
  [[nodiscard]] std::vector<Message> drain(std::uint32_t node);
  /// Number of pending messages for `node`.
  [[nodiscard]] std::size_t pending(std::uint32_t node) const;

  [[nodiscard]] const TrafficStats& stats(std::uint32_t node) const;
  [[nodiscard]] TrafficStats total_stats() const;
  /// Messages dropped by loss injection so far.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  void reset_stats();

  /// Adversarial/debug hook applied to every delivered copy: may modify the
  /// message in place or return false to suppress delivery (man-in-the-
  /// middle / jamming experiments). Charged rx is based on the original
  /// declared size.
  using TamperHook = std::function<bool(Message&, std::uint32_t receiver)>;
  void set_tamper_hook(TamperHook hook) { tamper_ = std::move(hook); }

  /// Passive observer of every transmitted message (eavesdropper).
  using Sniffer = std::function<void(const Message&)>;
  void set_sniffer(Sniffer sniffer) { sniffer_ = std::move(sniffer); }

 private:
  void deliver(const Message& msg, std::uint32_t to);

  double loss_rate_;
  mpint::XoshiroRng rng_;
  std::map<std::uint32_t, std::vector<Message>> inboxes_;
  std::map<std::uint32_t, TrafficStats> stats_;
  std::uint64_t dropped_ = 0;
  TamperHook tamper_;
  Sniffer sniffer_;
};

}  // namespace idgka::net
