// In-process simulation of a broadcast wireless network.
//
// The paper's setting: nodes share a broadcast medium; every broadcast is
// received by every other registered group member, and the per-node radio
// spends transmit energy once per message and receive energy once per
// received message. The simulator is round-based (protocols drain inboxes
// between rounds), counts bits per node for the energy model, and can
// inject message loss to exercise the protocols' retransmission paths.
//
// What moves through the medium is *bytes*, not typed objects: broadcast()
// serializes the message exactly once through the canonical codec
// (src/wire) and fans the same immutable ref-counted Frame out to every
// receiver — an O(1) buffer reference per receiver, not a payload copy.
// Inboxes hold frames; drain() decodes lazily at the receiver, and a frame
// that fails the strict decode (corrupted on air) is discarded and counted
// like a real radio discards a frame with a bad checksum — after the rx
// energy was already spent.
//
// The discrete-event layer (src/sim) turns the same network into a timed
// medium without touching protocol code: a Transport hook intercepts every
// (frame, receiver) copy and later re-injects it via deposit(), a
// RoundBarrier hook advances the virtual clock between a round's transmit
// and drain phases, and a DropObserver accounts every lost copy.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "mpint/random.h"
#include "net/message.h"
#include "wire/codec.h"

namespace idgka::net {

/// Per-node traffic counters. tx/rx_bits are paper-accounted sizes
/// (declared_bits override or the Payload size model); the _encoded_
/// variants are the codec-true frame sizes actually on air.
struct TrafficStats {
  std::uint64_t tx_messages = 0;
  std::uint64_t rx_messages = 0;
  std::uint64_t tx_bits = 0;
  std::uint64_t rx_bits = 0;
  std::uint64_t tx_encoded_bits = 0;
  std::uint64_t rx_encoded_bits = 0;
  /// Copies addressed to this node that were lost (loss injection, a link
  /// model's record_drop, or arrival after the node departed).
  std::uint64_t dropped_messages = 0;
  /// Received frames (rx charged) that failed the strict decode — bit
  /// flips or truncation by a byte-level adversary.
  std::uint64_t corrupted_frames = 0;
};

/// Broadcast network with per-node frame inboxes and optional loss
/// injection.
class Network {
 public:
  /// `loss_rate` in [0, 1): probability that any (frame, receiver) copy is
  /// dropped. Loss is deterministic under `seed`. When a Transport is
  /// installed it supersedes the uniform loss model (deposit() never draws).
  explicit Network(double loss_rate = 0.0, std::uint64_t seed = 0);

  /// Registers a node; must be called before it can send or receive.
  void add_node(std::uint32_t id);
  /// Deregisters a node, discarding its pending inbox and traffic counters
  /// (departed members must not accumulate state for the lifetime of a
  /// long-churn simulation). No-op when the node is unknown.
  void remove_node(std::uint32_t id);
  [[nodiscard]] bool has_node(std::uint32_t id) const;
  /// Number of currently registered nodes.
  [[nodiscard]] std::size_t node_count() const { return inboxes_.size(); }

  /// Broadcast to an explicit receiver group (paper protocols broadcast to
  /// the current group or subgroup). The message is encoded once; every
  /// receiver shares the same frame buffer. Self-delivery never happens: a
  /// sender that appears in `group` is skipped and is charged tx exactly
  /// once, rx never. An unknown receiver in `group` always throws
  /// std::invalid_argument, independent of loss injection; with a Transport
  /// installed the copy is handed off instead and a receiver that departs
  /// while it is in flight is recorded as a drop at arrival time.
  void broadcast(const Message& msg, const std::vector<std::uint32_t>& group);

  /// Point-to-point transmission (e.g. Join Round 3 Un -> Un+1).
  void unicast(Message msg);

  /// Removes and decodes all pending frames for `node`, in arrival order.
  /// Frames that fail the strict decode are dropped from the result and
  /// counted in `corrupted_frames` / corrupted().
  [[nodiscard]] std::vector<Message> drain(std::uint32_t node);
  /// Byte-level variant: removes and returns the raw frames undecoded.
  [[nodiscard]] std::vector<wire::Frame> drain_frames(std::uint32_t node);
  /// Number of pending frames for `node`.
  [[nodiscard]] std::size_t pending(std::uint32_t node) const;

  [[nodiscard]] const TrafficStats& stats(std::uint32_t node) const;
  [[nodiscard]] TrafficStats total_stats() const;
  /// Total lost copies so far (loss injection + record_drop + arrivals at
  /// departed nodes).
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }
  /// Total received frames discarded by the strict decoder.
  [[nodiscard]] std::uint64_t corrupted() const { return corrupted_; }

  void reset_stats();

  // --- Adversarial/debug hooks (byte level; typed adapters on top) ---

  /// Byte-level adversary applied to every delivered copy: may rewrite the
  /// frame bytes in place (bit flips, truncation, extension) or return
  /// false to suppress delivery (jamming). Charged rx is always based on
  /// the original frame as transmitted, never the mutated bytes.
  using FrameTamperHook =
      std::function<bool(std::vector<std::uint8_t>& bytes, std::uint32_t receiver)>;
  void set_frame_tamper_hook(FrameTamperHook hook) { frame_tamper_ = std::move(hook); }

  /// Typed adapter over the byte path: the delivered frame is decoded, the
  /// hook may modify the message or return false to suppress, and a
  /// modified message is re-encoded into a fresh frame. Charged rx is based
  /// on the original frame.
  using TamperHook = std::function<bool(Message&, std::uint32_t receiver)>;
  void set_tamper_hook(TamperHook hook) { tamper_ = std::move(hook); }

  /// Passive byte-level observer of every transmitted frame (eavesdropper
  /// on the air interface).
  using FrameSniffer = std::function<void(const wire::Frame&)>;
  void set_frame_sniffer(FrameSniffer sniffer) { frame_sniffer_ = std::move(sniffer); }

  /// Typed adapter: observes the decoded view of every transmitted frame
  /// (debug builds assert the frame decodes back to exactly this message).
  using Sniffer = std::function<void(const Message&)>;
  void set_sniffer(Sniffer sniffer) { sniffer_ = std::move(sniffer); }

  // --- Timed-delivery hooks (src/sim) ---

  /// Intercepts every (frame, receiver) copy instead of immediate delivery.
  /// The transport owns the copy's fate: it must eventually call deposit()
  /// (arrival) or record_drop() (loss). Senders are charged tx at hand-off
  /// time as usual. Holding the frame is an O(1) buffer reference.
  using Transport = std::function<void(const wire::Frame&, std::uint32_t receiver)>;
  void set_transport(Transport transport) { transport_ = std::move(transport); }
  [[nodiscard]] bool has_transport() const { return static_cast<bool>(transport_); }

  /// Injects a copy that arrives "now" on the timed path: charges rx, runs
  /// the tamper hooks and enqueues. No loss draw (the transport already
  /// decided). A receiver that departed while the copy was in flight is
  /// recorded as a drop instead of throwing.
  void deposit(const wire::Frame& frame, std::uint32_t to);

  /// Accounts one lost (frame, receiver) copy: bumps the global counter,
  /// the receiver's `dropped_messages` (when still registered) and notifies
  /// the drop observer. The sim layer calls this for link-model losses so
  /// drop accounting lives in one place.
  void record_drop(const wire::Frame& frame, std::uint32_t to);

  /// Observer of every lost copy (frame, intended receiver).
  using DropObserver = std::function<void(const wire::Frame&, std::uint32_t receiver)>;
  void set_drop_observer(DropObserver observer) { drop_observer_ = std::move(observer); }

  /// Invoked by reliable-round loops (gka::exchange_round, the cluster
  /// rekey distribution) between transmitting and draining. The sim layer
  /// installs a barrier that yields the hosting engine::ProtocolRun for one
  /// round timeout (falling back to advancing the virtual clock directly on
  /// a non-engine thread) so in-flight deposits land; without one, rounds
  /// stay lockstep.
  using RoundBarrier = std::function<void()>;
  void set_round_barrier(RoundBarrier barrier) { round_barrier_ = std::move(barrier); }
  void await_delivery() {
    if (round_barrier_) round_barrier_();
  }

  /// Overrides the retransmission cap reliable-round loops were called
  /// with (bounded retransmission under a timed driver).
  void set_retry_cap(int cap) { retry_cap_ = cap; }
  [[nodiscard]] std::optional<int> retry_cap() const { return retry_cap_; }
  /// Single source of truth for retry-cap precedence: a driver-installed
  /// set_retry_cap() ALWAYS wins over a reliable loop's call-site default
  /// `fallback`. Every reliable loop (gka::exchange_round, the cluster
  /// rekey distribution) resolves its retransmission budget through here —
  /// never by reading retry_cap() and improvising its own precedence.
  [[nodiscard]] int effective_retry_cap(int fallback) const {
    return retry_cap_.value_or(fallback);
  }

 private:
  wire::Frame encode_and_charge(const Message& msg);
  void deliver(const wire::Frame& frame, std::uint32_t to);
  void enqueue(std::vector<wire::Frame>& inbox, const wire::Frame& frame, std::uint32_t to);

  double loss_rate_;
  mpint::XoshiroRng rng_;
  std::map<std::uint32_t, std::vector<wire::Frame>> inboxes_;
  std::map<std::uint32_t, TrafficStats> stats_;
  std::uint64_t dropped_ = 0;
  std::uint64_t corrupted_ = 0;
  FrameTamperHook frame_tamper_;
  TamperHook tamper_;
  FrameSniffer frame_sniffer_;
  Sniffer sniffer_;
  Transport transport_;
  DropObserver drop_observer_;
  RoundBarrier round_barrier_;
  std::optional<int> retry_cap_;
};

}  // namespace idgka::net
