#include "net/network.h"

#include <cstdio>
#include <stdexcept>

#include "obs/trace.h"

namespace idgka::net {

Network::Network(double loss_rate, std::uint64_t seed)
    : loss_rate_(loss_rate), rng_(seed ^ 0x6e6574776f726bULL) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Network: loss_rate must be in [0, 1)");
  }
}

void Network::add_node(std::uint32_t id) {
  inboxes_.try_emplace(id);
  stats_.try_emplace(id);
}

void Network::remove_node(std::uint32_t id) {
  inboxes_.erase(id);
  stats_.erase(id);
}

bool Network::has_node(std::uint32_t id) const { return inboxes_.contains(id); }

void Network::record_drop(const wire::Frame& frame, std::uint32_t to) {
  ++dropped_;
  OBS_COUNT("net.drops", 1);
#if IDGKA_OBS
  {
    // Per-directed-link drop dimension. Drops are the rare path by
    // construction, so the labeled lookup's mutex cost is acceptable here;
    // the registry's per-family cap coalesces n^2 link tails.
    char link[24];
    std::snprintf(link, sizeof link, "%u->%u", frame.sender(), to);
    OBS_COUNT_LABELED("net.drop", link, 1);
  }
#endif
  OBS_INSTANT_ARG("net.drop", "net", to);
  const auto it = stats_.find(to);
  if (it != stats_.end()) ++it->second.dropped_messages;
  if (drop_observer_) drop_observer_(frame, to);
}

void Network::enqueue(std::vector<wire::Frame>& inbox, const wire::Frame& frame,
                      std::uint32_t to) {
  // rx is charged from the frame as transmitted — an adversary mutating the
  // copy below does not change what the radio already received.
  auto& st = stats_[to];
  ++st.rx_messages;
  st.rx_bits += frame.accounted_bits();
  st.rx_encoded_bits += frame.size_bits();
  OBS_COUNT("net.rx_copies", 1);
  OBS_COUNT("net.rx_encoded_bits", frame.size_bits());

  wire::Frame out = frame;  // shared buffer; O(1)
  if (frame_tamper_) {
    std::vector<std::uint8_t> bytes(frame.bytes().begin(), frame.bytes().end());
    if (!frame_tamper_(bytes, to)) return;  // jammed
    out = wire::Frame(std::move(bytes), frame.accounted_bits(), frame.sender());
  }
  if (tamper_) {
    Message msg;
    try {
      msg = wire::decode(out);
    } catch (const wire::DecodeError&) {
      // A byte-level adversary corrupted the copy before the typed hook
      // could see it; the receiver will discard it either way.
      ++corrupted_;
      ++st.corrupted_frames;
      OBS_COUNT("net.corrupted_frames", 1);
      return;
    }
    const Message original = msg;
    if (!tamper_(msg, to)) return;  // suppressed by the adversary
    if (!(msg == original)) {
      out = wire::encode(msg).with_metadata(frame.accounted_bits(), frame.sender());
    }
  }
  inbox.push_back(std::move(out));
}

void Network::deliver(const wire::Frame& frame, std::uint32_t to) {
  // Unknown recipients are rejected before the loss draw so the error is
  // raised consistently, not only on the (1 - loss_rate) paths.
  auto it = inboxes_.find(to);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown recipient");
  if (loss_rate_ > 0.0 && rng_.next_double() < loss_rate_) {
    record_drop(frame, to);
    return;
  }
  enqueue(it->second, frame, to);
}

void Network::deposit(const wire::Frame& frame, std::uint32_t to) {
  OBS_INSTANT_ARG("net.deposit", "net", to);
  auto it = inboxes_.find(to);
  if (it == inboxes_.end()) {
    // Receiver departed while the copy was in flight: a timed medium cannot
    // un-send, so the copy is accounted as lost rather than an error.
    record_drop(frame, to);
    return;
  }
  enqueue(it->second, frame, to);
}

wire::Frame Network::encode_and_charge(const Message& msg) {
  wire::Frame frame = wire::encode(msg);
#ifndef NDEBUG
  // Every protocol message must round-trip bit-exact through the codec,
  // and its paper accounting must be a declared override or the size
  // model — never a silent third value.
  wire::assert_roundtrip(msg, frame);
#endif
  if (frame_sniffer_) frame_sniffer_(frame);
  if (sniffer_) sniffer_(msg);
  auto& st = stats_[msg.sender];
  ++st.tx_messages;
  st.tx_bits += frame.accounted_bits();
  st.tx_encoded_bits += frame.size_bits();
  OBS_COUNT("net.tx_frames", 1);
  OBS_COUNT("net.tx_encoded_bits", frame.size_bits());
  return frame;
}

void Network::broadcast(const Message& msg, const std::vector<std::uint32_t>& group) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  OBS_SPAN_ARG("net.broadcast", "net", group.size());
  const wire::Frame frame = encode_and_charge(msg);  // encoded exactly once
  for (const std::uint32_t to : group) {
    if (to == msg.sender) continue;  // self-delivery never happens
    if (transport_) {
      transport_(frame, to);
    } else {
      deliver(frame, to);
    }
  }
}

void Network::unicast(Message msg) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  if (!msg.recipient.has_value()) {
    throw std::invalid_argument("Network: unicast requires a recipient");
  }
  OBS_SPAN_ARG("net.unicast", "net", *msg.recipient);
  const wire::Frame frame = encode_and_charge(msg);
  if (transport_) {
    transport_(frame, *msg.recipient);
  } else {
    deliver(frame, *msg.recipient);
  }
}

std::vector<Message> Network::drain(std::uint32_t node) {
  std::vector<wire::Frame> frames = drain_frames(node);
  std::vector<Message> out;
  out.reserve(frames.size());
  for (const wire::Frame& frame : frames) {
    try {
      out.push_back(wire::decode(frame));
    } catch (const wire::DecodeError&) {
      // Bad checksum in a real radio: the frame was received (rx charged at
      // enqueue) but is discarded here, and retransmission covers the gap.
      ++corrupted_;
      ++stats_[node].corrupted_frames;
    }
  }
  return out;
}

std::vector<wire::Frame> Network::drain_frames(std::uint32_t node) {
  auto it = inboxes_.find(node);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown node");
  std::vector<wire::Frame> out;
  out.swap(it->second);
  return out;
}

std::size_t Network::pending(std::uint32_t node) const {
  const auto it = inboxes_.find(node);
  return it == inboxes_.end() ? 0 : it->second.size();
}

const TrafficStats& Network::stats(std::uint32_t node) const {
  const auto it = stats_.find(node);
  if (it == stats_.end()) throw std::invalid_argument("Network: unknown node");
  return it->second;
}

TrafficStats Network::total_stats() const {
  TrafficStats total;
  for (const auto& [id, st] : stats_) {
    total.tx_messages += st.tx_messages;
    total.rx_messages += st.rx_messages;
    total.tx_bits += st.tx_bits;
    total.rx_bits += st.rx_bits;
    total.tx_encoded_bits += st.tx_encoded_bits;
    total.rx_encoded_bits += st.rx_encoded_bits;
    total.dropped_messages += st.dropped_messages;
    total.corrupted_frames += st.corrupted_frames;
  }
  return total;
}

void Network::reset_stats() {
  for (auto& [id, st] : stats_) st = TrafficStats{};
  dropped_ = 0;
  corrupted_ = 0;
}

}  // namespace idgka::net
