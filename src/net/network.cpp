#include "net/network.h"

#include <stdexcept>

namespace idgka::net {

Network::Network(double loss_rate, std::uint64_t seed)
    : loss_rate_(loss_rate), rng_(seed ^ 0x6e6574776f726bULL) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Network: loss_rate must be in [0, 1)");
  }
}

void Network::add_node(std::uint32_t id) {
  inboxes_.try_emplace(id);
  stats_.try_emplace(id);
}

void Network::remove_node(std::uint32_t id) {
  inboxes_.erase(id);
  stats_.erase(id);
}

bool Network::has_node(std::uint32_t id) const { return inboxes_.contains(id); }

void Network::record_drop(const Message& msg, std::uint32_t to) {
  ++dropped_;
  const auto it = stats_.find(to);
  if (it != stats_.end()) ++it->second.dropped_messages;
  if (drop_observer_) drop_observer_(msg, to);
}

void Network::enqueue(std::vector<Message>& inbox, const Message& msg, std::uint32_t to) {
  auto& st = stats_[to];
  ++st.rx_messages;
  st.rx_bits += msg.accounted_bits();
  if (tamper_) {
    Message copy = msg;
    if (!tamper_(copy, to)) return;  // suppressed by the adversary
    inbox.push_back(std::move(copy));
    return;
  }
  inbox.push_back(msg);
}

void Network::deliver(const Message& msg, std::uint32_t to) {
  // Unknown recipients are rejected before the loss draw so the error is
  // raised consistently, not only on the (1 - loss_rate) paths.
  auto it = inboxes_.find(to);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown recipient");
  if (loss_rate_ > 0.0 && rng_.next_double() < loss_rate_) {
    record_drop(msg, to);
    return;
  }
  enqueue(it->second, msg, to);
}

void Network::deposit(const Message& msg, std::uint32_t to) {
  auto it = inboxes_.find(to);
  if (it == inboxes_.end()) {
    // Receiver departed while the copy was in flight: a timed medium cannot
    // un-send, so the copy is accounted as lost rather than an error.
    record_drop(msg, to);
    return;
  }
  enqueue(it->second, msg, to);
}

void Network::broadcast(const Message& msg, const std::vector<std::uint32_t>& group) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  if (sniffer_) sniffer_(msg);
  auto& st = stats_[msg.sender];
  ++st.tx_messages;
  st.tx_bits += msg.accounted_bits();
  for (const std::uint32_t to : group) {
    if (to == msg.sender) continue;  // self-delivery never happens
    if (transport_) {
      transport_(msg, to);
    } else {
      deliver(msg, to);
    }
  }
}

void Network::unicast(Message msg) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  if (!msg.recipient.has_value()) {
    throw std::invalid_argument("Network: unicast requires a recipient");
  }
  if (sniffer_) sniffer_(msg);
  auto& st = stats_[msg.sender];
  ++st.tx_messages;
  st.tx_bits += msg.accounted_bits();
  if (transport_) {
    transport_(msg, *msg.recipient);
  } else {
    deliver(msg, *msg.recipient);
  }
}

std::vector<Message> Network::drain(std::uint32_t node) {
  auto it = inboxes_.find(node);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown node");
  std::vector<Message> out;
  out.swap(it->second);
  return out;
}

std::size_t Network::pending(std::uint32_t node) const {
  const auto it = inboxes_.find(node);
  return it == inboxes_.end() ? 0 : it->second.size();
}

const TrafficStats& Network::stats(std::uint32_t node) const {
  const auto it = stats_.find(node);
  if (it == stats_.end()) throw std::invalid_argument("Network: unknown node");
  return it->second;
}

TrafficStats Network::total_stats() const {
  TrafficStats total;
  for (const auto& [id, st] : stats_) {
    total.tx_messages += st.tx_messages;
    total.rx_messages += st.rx_messages;
    total.tx_bits += st.tx_bits;
    total.rx_bits += st.rx_bits;
    total.dropped_messages += st.dropped_messages;
  }
  return total;
}

void Network::reset_stats() {
  for (auto& [id, st] : stats_) st = TrafficStats{};
  dropped_ = 0;
}

}  // namespace idgka::net
