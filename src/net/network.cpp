#include "net/network.h"

#include <stdexcept>

namespace idgka::net {

Network::Network(double loss_rate, std::uint64_t seed)
    : loss_rate_(loss_rate), rng_(seed ^ 0x6e6574776f726bULL) {
  if (loss_rate < 0.0 || loss_rate >= 1.0) {
    throw std::invalid_argument("Network: loss_rate must be in [0, 1)");
  }
}

void Network::add_node(std::uint32_t id) {
  inboxes_.try_emplace(id);
  stats_.try_emplace(id);
}

void Network::remove_node(std::uint32_t id) {
  inboxes_.erase(id);
  stats_.erase(id);
}

bool Network::has_node(std::uint32_t id) const { return inboxes_.contains(id); }

void Network::deliver(const Message& msg, std::uint32_t to) {
  if (loss_rate_ > 0.0) {
    // Uniform draw in [0, 1) from 53 random bits.
    const double u = static_cast<double>(rng_.next_u64() >> 11) * 0x1.0p-53;
    if (u < loss_rate_) {
      ++dropped_;
      return;
    }
  }
  auto it = inboxes_.find(to);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown recipient");
  auto& st = stats_[to];
  ++st.rx_messages;
  st.rx_bits += msg.accounted_bits();
  if (tamper_) {
    Message copy = msg;
    if (!tamper_(copy, to)) return;  // suppressed by the adversary
    it->second.push_back(std::move(copy));
    return;
  }
  it->second.push_back(msg);
}

void Network::broadcast(const Message& msg, const std::vector<std::uint32_t>& group) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  if (sniffer_) sniffer_(msg);
  auto& st = stats_[msg.sender];
  ++st.tx_messages;
  st.tx_bits += msg.accounted_bits();
  for (const std::uint32_t to : group) {
    if (to == msg.sender) continue;
    deliver(msg, to);
  }
}

void Network::unicast(Message msg) {
  if (!has_node(msg.sender)) throw std::invalid_argument("Network: unknown sender");
  if (!msg.recipient.has_value()) {
    throw std::invalid_argument("Network: unicast requires a recipient");
  }
  if (sniffer_) sniffer_(msg);
  auto& st = stats_[msg.sender];
  ++st.tx_messages;
  st.tx_bits += msg.accounted_bits();
  deliver(msg, *msg.recipient);
}

std::vector<Message> Network::drain(std::uint32_t node) {
  auto it = inboxes_.find(node);
  if (it == inboxes_.end()) throw std::invalid_argument("Network: unknown node");
  std::vector<Message> out;
  out.swap(it->second);
  return out;
}

std::size_t Network::pending(std::uint32_t node) const {
  const auto it = inboxes_.find(node);
  return it == inboxes_.end() ? 0 : it->second.size();
}

const TrafficStats& Network::stats(std::uint32_t node) const {
  const auto it = stats_.find(node);
  if (it == stats_.end()) throw std::invalid_argument("Network: unknown node");
  return it->second;
}

TrafficStats Network::total_stats() const {
  TrafficStats total;
  for (const auto& [id, st] : stats_) {
    total.tx_messages += st.tx_messages;
    total.rx_messages += st.rx_messages;
    total.tx_bits += st.tx_bits;
    total.rx_bits += st.rx_bits;
  }
  return total;
}

void Network::reset_stats() {
  for (auto& [id, st] : stats_) st = TrafficStats{};
  dropped_ = 0;
}

}  // namespace idgka::net
