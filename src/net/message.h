// Wire messages for the simulated broadcast wireless network.
//
// Protocol payloads are small typed dictionaries (named big integers and
// byte blobs) so that every protocol message is self-describing and its
// serialized size is computable. The paper accounts message cost in bits
// (Table 3); senders may additionally declare a paper-accounting bit size
// (e.g. a group element is |p| bits regardless of leading zero bytes).
#pragma once

#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpint/bigint.h"

namespace idgka::net {

/// Typed key-value payload.
class Payload {
 public:
  void put_int(std::string name, mpint::BigInt value);
  void put_blob(std::string name, std::vector<std::uint8_t> value);
  void put_u32(std::string name, std::uint32_t value);

  /// Throws std::out_of_range naming the missing field.
  [[nodiscard]] const mpint::BigInt& get_int(const std::string& name) const;
  [[nodiscard]] const std::vector<std::uint8_t>& get_blob(const std::string& name) const;
  [[nodiscard]] std::uint32_t get_u32(const std::string& name) const;
  [[nodiscard]] bool has_int(const std::string& name) const;
  [[nodiscard]] bool has_blob(const std::string& name) const;
  [[nodiscard]] bool has_u32(const std::string& name) const;

  /// Size *model* in bytes (tag + length + content per field). This is the
  /// paper-accounting estimate, not the frame size — the canonical encoding
  /// (src/wire) adds header, field names and varints on top. The model is a
  /// lower bound of the true frame size (asserted on every transmission in
  /// debug builds).
  [[nodiscard]] std::size_t wire_bytes() const;

  // Insertion-ordered field access (the codec's canonical order).
  [[nodiscard]] const std::vector<std::pair<std::string, mpint::BigInt>>& ints() const {
    return ints_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::vector<std::uint8_t>>>& blobs()
      const {
    return blobs_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, std::uint32_t>>& u32s() const {
    return u32s_;
  }

  bool operator==(const Payload&) const = default;

 private:
  std::vector<std::pair<std::string, mpint::BigInt>> ints_;
  std::vector<std::pair<std::string, std::vector<std::uint8_t>>> blobs_;
  std::vector<std::pair<std::string, std::uint32_t>> u32s_;
};

/// A protocol message in flight.
struct Message {
  std::uint32_t sender = 0;
  /// Empty => broadcast to the sender's group.
  std::optional<std::uint32_t> recipient;
  /// Protocol-defined label ("round1", "join-r2", ...).
  std::string type;
  Payload payload;
  /// Bit size used for energy accounting. Zero => use serialized size.
  std::size_t declared_bits = 0;

  [[nodiscard]] std::size_t accounted_bits() const {
    return declared_bits != 0 ? declared_bits : payload.wire_bytes() * 8;
  }

  bool operator==(const Message&) const = default;
};

}  // namespace idgka::net
