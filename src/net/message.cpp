#include "net/message.h"

#include <algorithm>

namespace idgka::net {

void Payload::put_int(std::string name, mpint::BigInt value) {
  ints_.emplace_back(std::move(name), std::move(value));
}

void Payload::put_blob(std::string name, std::vector<std::uint8_t> value) {
  blobs_.emplace_back(std::move(name), std::move(value));
}

void Payload::put_u32(std::string name, std::uint32_t value) {
  u32s_.emplace_back(std::move(name), value);
}

namespace {

template <typename Vec>
const auto& find_or_throw(const Vec& vec, const std::string& name, const char* kind) {
  const auto it = std::find_if(vec.begin(), vec.end(),
                               [&](const auto& kv) { return kv.first == name; });
  if (it == vec.end()) {
    throw std::out_of_range(std::string("Payload: missing ") + kind + " field '" + name + "'");
  }
  return it->second;
}

}  // namespace

const mpint::BigInt& Payload::get_int(const std::string& name) const {
  return find_or_throw(ints_, name, "int");
}

const std::vector<std::uint8_t>& Payload::get_blob(const std::string& name) const {
  return find_or_throw(blobs_, name, "blob");
}

std::uint32_t Payload::get_u32(const std::string& name) const {
  return find_or_throw(u32s_, name, "u32");
}

bool Payload::has_int(const std::string& name) const {
  return std::any_of(ints_.begin(), ints_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

bool Payload::has_blob(const std::string& name) const {
  return std::any_of(blobs_.begin(), blobs_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

bool Payload::has_u32(const std::string& name) const {
  return std::any_of(u32s_.begin(), u32s_.end(),
                     [&](const auto& kv) { return kv.first == name; });
}

std::size_t Payload::wire_bytes() const {
  // Per field: 1 tag byte + 2 length bytes + content. u32 fields: 1 + 4.
  // Minimal big-endian content is ceil(bit_length / 8) bytes (0 for zero),
  // computed without materializing the magnitude — this runs per
  // transmission.
  std::size_t total = 0;
  for (const auto& [name, value] : ints_) total += 3 + (value.bit_length() + 7) / 8;
  for (const auto& [name, value] : blobs_) total += 3 + value.size();
  total += u32s_.size() * 5;
  return total;
}

}  // namespace idgka::net
