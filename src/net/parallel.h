// Minimal fork-join parallelism for per-node protocol work.
//
// Protocol rounds are barriers: between them every member computes only on
// its own state plus its received (immutable) messages — the MPI-style
// share-nothing decomposition. parallel_for_each statically partitions the
// index range into one contiguous chunk per worker (no shared cursor, no
// per-index type-erased call — the body is invoked directly inside the
// chunk loop) and rethrows the first worker exception.
//
// Determinism: the protocols draw randomness from per-member DRBGs, so the
// schedule cannot change any result; tests pass with any thread count
// (including IDGKA_THREADS=1).
#pragma once

#include <algorithm>
#include <cstddef>
#include <exception>
#include <functional>

namespace idgka::net {

/// Number of worker threads used by parallel_for_each (reads the
/// IDGKA_THREADS environment variable once; defaults to the hardware
/// concurrency, capped at 16).
std::size_t worker_count();

/// Invokes task(w) for w in [0, workers) with each w on its own thread
/// (w = 0 runs on the calling thread). Blocks until all return; rethrows
/// the first task exception. The building block under parallel_for_each —
/// exposed for callers that bring their own partitioning.
void parallel_run(std::size_t workers, const std::function<void(std::size_t)>& task);

/// Invokes fn(i) for i in [0, count). With more than one worker the range
/// is split into contiguous chunks — worker w owns indices
/// [w*count/workers, (w+1)*count/workers) — so per-task cost is one direct
/// call, not an atomic claim plus a std::function dispatch. Exceptions
/// from workers are rethrown in the caller (first one wins; a throwing
/// worker abandons the rest of its own chunk only).
template <typename Fn>
void parallel_for_each(std::size_t count, Fn&& fn) {
  const std::size_t workers = std::min(worker_count(), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  parallel_run(workers, [count, workers, &fn](std::size_t w) {
    const std::size_t begin = w * count / workers;
    const std::size_t end = (w + 1) * count / workers;
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

}  // namespace idgka::net
