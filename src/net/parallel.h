// Minimal fork-join parallelism for per-node protocol work.
//
// Protocol rounds are barriers: between them every member computes only on
// its own state plus its received (immutable) messages — the MPI-style
// share-nothing decomposition. parallel_for_each runs one index per task
// across a bounded thread pool and rethrows the first worker exception.
//
// Determinism: the protocols draw randomness from per-member DRBGs, so the
// schedule cannot change any result; tests pass with any thread count
// (including IDGKA_THREADS=1).
#pragma once

#include <cstddef>
#include <exception>
#include <functional>

namespace idgka::net {

/// Number of worker threads used by parallel_for_each (reads the
/// IDGKA_THREADS environment variable once; defaults to the hardware
/// concurrency, capped at 16).
std::size_t worker_count();

/// Invokes fn(i) for i in [0, count), distributing across workers when
/// count > 1 and workers > 1. Exceptions from workers are rethrown in the
/// caller (first one wins).
void parallel_for_each(std::size_t count, const std::function<void(std::size_t)>& fn);

}  // namespace idgka::net
