#include "net/parallel.h"

#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace idgka::net {

std::size_t worker_count() {
  static const std::size_t count = [] {
    if (const char* env = std::getenv("IDGKA_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : (hw > 16 ? 16 : hw));
  }();
  return count;
}

void parallel_run(std::size_t workers, const std::function<void(std::size_t)>& task) {
  if (workers <= 1) {
    if (workers == 1) task(0);
    return;
  }

  std::exception_ptr first_error;
  std::mutex error_mutex;
  const auto guarded = [&](std::size_t w) {
    try {
      task(w);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(error_mutex);
      if (!first_error) first_error = std::current_exception();
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(guarded, w);
  guarded(0);
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace idgka::net
