#include "net/parallel.h"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

namespace idgka::net {

std::size_t worker_count() {
  static const std::size_t count = [] {
    if (const char* env = std::getenv("IDGKA_THREADS")) {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed >= 1) return static_cast<std::size_t>(parsed);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return static_cast<std::size_t>(hw == 0 ? 1 : (hw > 16 ? 16 : hw));
  }();
  return count;
}

void parallel_for_each(std::size_t count, const std::function<void(std::size_t)>& fn) {
  const std::size_t workers = std::min(worker_count(), count);
  if (workers <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;

  auto body = [&] {
    while (true) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(body);
  body();
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace idgka::net
