// The Guillou-Quisquater ID-based signature variant of Section 3 of the
// paper, plus the shared-challenge batch verification (Eq. 2) that powers
// the proposed GKA protocol.
//
// Setup/Extract (PKG):  n = p'q', gcd(e, phi(n)) = 1, d = e^{-1} mod phi(n),
//                       S_ID = H(ID)^d mod n.
// Sign:                 t = tau^e mod n, c = H(t || M), s = tau * S_ID^c.
// Verify:               c == H(s^e * H(ID)^{-c} mod n || M).
//
// The GKA protocol splits signing into commit (Round 1: broadcast t_i) and
// respond (Round 2: all signers share the challenge c = H(T || Z) with
// T = prod t_i), enabling the n-signature batch check
//   c == H((prod s_i)^e * (prod H(U_i))^{-c} mod n || Z).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "mpint/bigint.h"
#include "mpint/mod_context.h"
#include "mpint/prime.h"
#include "mpint/random.h"

namespace idgka::sig {

using mpint::BigInt;

/// Public GQ parameters (the PKG's `params` = (n, e, H)).
struct GqParams {
  BigInt n;  ///< RSA-type modulus p'q' (factors secret).
  BigInt e;  ///< Public verification exponent, coprime to phi(n).
};

/// H(ID): hashes a 32-bit identity into Z_n^* (paper: users carry 32-bit
/// identities). Deterministic; domain-separated from message hashing.
[[nodiscard]] BigInt gq_hash_id(const GqParams& params, std::uint32_t id);

/// Challenge hash c = H(first || second), mapping into a positive integer of
/// at most 256 bits (the paper's l-bit one-way hash H).
[[nodiscard]] BigInt gq_challenge(std::span<const std::uint8_t> first,
                                  std::span<const std::uint8_t> second);

/// A standalone GQ signature (s, c).
struct GqSignature {
  BigInt s;
  BigInt c;
};

/// The Private Key Generator: owns the master keys (p', q', d).
class GqPkg {
 public:
  /// Generates fresh parameters. `modulus_bits` = |n| (paper: 1024).
  GqPkg(mpint::Rng& rng, std::size_t modulus_bits, int mr_rounds = 32);
  /// Wraps externally generated key material (tests, fixed profiles).
  explicit GqPkg(mpint::GqModulus modulus);

  [[nodiscard]] const GqParams& params() const { return params_; }

  /// Extract: S_ID = H(ID)^d mod n. In deployment this travels over a
  /// secure channel to the user.
  [[nodiscard]] BigInt extract(std::uint32_t id) const;

 private:
  mpint::GqModulus key_;
  GqParams params_;
  mpint::ModContext ctx_;
};

/// Per-user signing context holding the ID-based secret S_ID.
class GqSigner {
 public:
  /// Builds a private mod-n context for the signer's modulus.
  GqSigner(GqParams params, std::uint32_t id, BigInt secret_key);
  /// Shares a caller-owned mod-n context (the GKA protocols construct one
  /// signer per member per round; re-deriving Montgomery state each time
  /// would dominate the signing cost).
  GqSigner(GqParams params, std::uint32_t id, BigInt secret_key,
           std::shared_ptr<const mpint::ModContext> ctx);

  [[nodiscard]] std::uint32_t id() const { return id_; }
  [[nodiscard]] const GqParams& params() const { return params_; }

  /// Round-1 material: tau random in Z_n^*, t = tau^e mod n.
  struct Commitment {
    BigInt tau;  ///< secret
    BigInt t;    ///< broadcast
  };
  [[nodiscard]] Commitment commit(mpint::Rng& rng) const;

  /// Round-2 response for an externally supplied challenge: s = tau * S_ID^c.
  [[nodiscard]] BigInt respond(const Commitment& commitment, const BigInt& c) const;

  /// One-shot signature over a message: sigma = (s, c), c = H(t || M).
  [[nodiscard]] GqSignature sign(std::span<const std::uint8_t> message, mpint::Rng& rng) const;

 private:
  GqParams params_;
  std::uint32_t id_;
  BigInt secret_;
  std::shared_ptr<const mpint::ModContext> ctx_;
};

/// Verifies a standalone signature: c == H(s^e * H(ID)^{-c} || M), reusing
/// the caller's mod-n context.
[[nodiscard]] bool gq_verify(const GqParams& params, const mpint::ModContext& ctx,
                             std::uint32_t id, std::span<const std::uint8_t> message,
                             const GqSignature& sig);
/// Compatibility shim: derives a transient mod-n context per call.
[[nodiscard]] bool gq_verify(const GqParams& params, std::uint32_t id,
                             std::span<const std::uint8_t> message, const GqSignature& sig);

/// Batch verification (Eq. 2 of the paper). All signers share challenge `c`;
/// `z_bytes` is the serialized Z that was hashed into the challenge.
/// Checks c == H((prod s_i)^e * (prod H(U_i))^{-c} mod n || Z).
[[nodiscard]] bool gq_batch_verify(const GqParams& params, const mpint::ModContext& ctx,
                                   std::span<const std::uint32_t> ids,
                                   std::span<const BigInt> s_values, const BigInt& c,
                                   std::span<const std::uint8_t> z_bytes);
/// Compatibility shim: derives a transient mod-n context per call.
[[nodiscard]] bool gq_batch_verify(const GqParams& params, std::span<const std::uint32_t> ids,
                                   std::span<const BigInt> s_values, const BigInt& c,
                                   std::span<const std::uint8_t> z_bytes);

/// Serialized GQ signature size in bits: |s| = |n|, |c| = 160 (paper
/// Table 3 footnote: s = 1024-bit, c = 160-bit).
[[nodiscard]] std::size_t gq_signature_bits(const GqParams& params);

}  // namespace idgka::sig
