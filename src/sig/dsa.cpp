#include "sig/dsa.h"

#include <stdexcept>
#include <string>

#include "hash/sha256.h"

namespace idgka::sig {

namespace {

void require_ctx_p(const DsaParams& params, const mpint::ModContext& ctx_p,
                   const char* where) {
  if (ctx_p.modulus() != params.p) {
    throw std::invalid_argument(std::string(where) + ": context modulus does not match params.p");
  }
}

// SHA-256(message) truncated to the bit length of q, per FIPS 186-4 §4.2.
BigInt message_digest(const BigInt& q, std::span<const std::uint8_t> message) {
  const auto digest = hash::Sha256::digest(message);
  BigInt z = BigInt::from_bytes_be(digest);
  const std::size_t qbits = q.bit_length();
  if (z.bit_length() > qbits) z >>= (z.bit_length() - qbits);
  return z;
}

}  // namespace

DsaParams dsa_generate_params(mpint::Rng& rng, std::size_t p_bits, std::size_t q_bits,
                              int mr_rounds) {
  const mpint::SchnorrGroup grp = mpint::generate_schnorr_group(rng, p_bits, q_bits, mr_rounds);
  return DsaParams{grp.p, grp.q, grp.g};
}

DsaKeyPair dsa_generate_keypair(const DsaParams& params, const mpint::ModContext& ctx_p,
                                mpint::Rng& rng) {
  require_ctx_p(params, ctx_p, "dsa_generate_keypair");
  DsaKeyPair kp;
  kp.x = mpint::random_range(rng, BigInt{1}, params.q);
  kp.y = ctx_p.exp(params.g, kp.x);
  return kp;
}

DsaKeyPair dsa_generate_keypair(const DsaParams& params, mpint::Rng& rng) {
  return dsa_generate_keypair(params, mpint::ModContext(params.p), rng);
}

DsaSignature dsa_sign(const DsaParams& params, const mpint::ModContext& ctx_p,
                      const DsaKeyPair& key, std::span<const std::uint8_t> message,
                      mpint::Rng& rng) {
  require_ctx_p(params, ctx_p, "dsa_sign");
  const BigInt z = message_digest(params.q, message);
  while (true) {
    const BigInt k = mpint::random_range(rng, BigInt{1}, params.q);
    const BigInt r = ctx_p.exp(params.g, k).mod(params.q);
    if (r.is_zero()) continue;
    const BigInt k_inv = mpint::mod_inverse(k, params.q);
    const BigInt s = mpint::mod_mul(k_inv, (z + key.x * r).mod(params.q), params.q);
    if (s.is_zero()) continue;
    return DsaSignature{r, s};
  }
}

DsaSignature dsa_sign(const DsaParams& params, const DsaKeyPair& key,
                      std::span<const std::uint8_t> message, mpint::Rng& rng) {
  return dsa_sign(params, mpint::ModContext(params.p), key, message, rng);
}

bool dsa_verify(const DsaParams& params, const mpint::ModContext& ctx_p, const BigInt& y,
                std::span<const std::uint8_t> message, const DsaSignature& sig) {
  require_ctx_p(params, ctx_p, "dsa_verify");
  if (sig.r <= BigInt{} || sig.r >= params.q) return false;
  if (sig.s <= BigInt{} || sig.s >= params.q) return false;
  const BigInt z = message_digest(params.q, message);
  const BigInt w = mpint::mod_inverse(sig.s, params.q);
  const BigInt u1 = mpint::mod_mul(z, w, params.q);
  const BigInt u2 = mpint::mod_mul(sig.r, w, params.q);
  const BigInt v = ctx_p.mul(ctx_p.exp(params.g, u1), ctx_p.exp(y, u2)).mod(params.q);
  return v == sig.r;
}

bool dsa_verify(const DsaParams& params, const BigInt& y,
                std::span<const std::uint8_t> message, const DsaSignature& sig) {
  return dsa_verify(params, mpint::ModContext(params.p), y, message, sig);
}

std::size_t dsa_signature_bits(const DsaParams& params) { return 2 * params.q.bit_length(); }

}  // namespace idgka::sig
