#include "sig/dsa.h"

#include <stdexcept>
#include <string>

#include "hash/hmac_drbg.h"
#include "hash/sha256.h"

namespace idgka::sig {

namespace {

void require_ctx_p(const DsaParams& params, const mpint::ModContext& ctx_p,
                   const char* where) {
  if (ctx_p.modulus() != params.p) {
    throw std::invalid_argument(std::string(where) + ": context modulus does not match params.p");
  }
}

// SHA-256(message) truncated to the bit length of q, per FIPS 186-4 §4.2.
BigInt message_digest(const BigInt& q, std::span<const std::uint8_t> message) {
  const auto digest = hash::Sha256::digest(message);
  BigInt z = BigInt::from_bytes_be(digest);
  const std::size_t qbits = q.bit_length();
  if (z.bit_length() > qbits) z >>= (z.bit_length() - qbits);
  return z;
}

}  // namespace

DsaParams dsa_generate_params(mpint::Rng& rng, std::size_t p_bits, std::size_t q_bits,
                              int mr_rounds) {
  const mpint::SchnorrGroup grp = mpint::generate_schnorr_group(rng, p_bits, q_bits, mr_rounds);
  return DsaParams{grp.p, grp.q, grp.g};
}

DsaKeyPair dsa_generate_keypair(const DsaParams& params, const mpint::ModContext& ctx_p,
                                mpint::Rng& rng) {
  require_ctx_p(params, ctx_p, "dsa_generate_keypair");
  DsaKeyPair kp;
  kp.x = mpint::random_range(rng, BigInt{1}, params.q);
  kp.y = ctx_p.exp(params.g, kp.x);
  return kp;
}

DsaKeyPair dsa_generate_keypair(const DsaParams& params, mpint::Rng& rng) {
  return dsa_generate_keypair(params, mpint::ModContext(params.p), rng);
}

DsaCommittedSignature dsa_sign_committed(const DsaParams& params,
                                         const mpint::ModContext& ctx_p, const DsaKeyPair& key,
                                         std::span<const std::uint8_t> message,
                                         mpint::Rng& rng) {
  require_ctx_p(params, ctx_p, "dsa_sign");
  const BigInt z = message_digest(params.q, message);
  while (true) {
    const BigInt k = mpint::random_range(rng, BigInt{1}, params.q);
    const BigInt big_r = ctx_p.exp(params.g, k);
    const BigInt r = big_r.mod(params.q);
    if (r.is_zero()) continue;
    const BigInt k_inv = mpint::mod_inverse(k, params.q);
    const BigInt s = mpint::mod_mul(k_inv, (z + key.x * r).mod(params.q), params.q);
    if (s.is_zero()) continue;
    return DsaCommittedSignature{DsaSignature{r, s}, big_r};
  }
}

DsaSignature dsa_sign(const DsaParams& params, const mpint::ModContext& ctx_p,
                      const DsaKeyPair& key, std::span<const std::uint8_t> message,
                      mpint::Rng& rng) {
  return dsa_sign_committed(params, ctx_p, key, message, rng).sig;
}

DsaSignature dsa_sign(const DsaParams& params, const DsaKeyPair& key,
                      std::span<const std::uint8_t> message, mpint::Rng& rng) {
  return dsa_sign(params, mpint::ModContext(params.p), key, message, rng);
}

bool dsa_verify(const DsaParams& params, const mpint::ModContext& ctx_p, const BigInt& y,
                std::span<const std::uint8_t> message, const DsaSignature& sig) {
  require_ctx_p(params, ctx_p, "dsa_verify");
  if (sig.r <= BigInt{} || sig.r >= params.q) return false;
  if (sig.s <= BigInt{} || sig.s >= params.q) return false;
  const BigInt z = message_digest(params.q, message);
  const BigInt w = mpint::mod_inverse(sig.s, params.q);
  const BigInt u1 = mpint::mod_mul(z, w, params.q);
  const BigInt u2 = mpint::mod_mul(sig.r, w, params.q);
  // g^u1 * y^u2 mod p as one residue chain; only the final value leaves the
  // Montgomery domain (for the mod-q comparison).
  mpint::Residue acc = ctx_p.to_residue(params.g);
  ctx_p.exp(acc, u1, acc);
  mpint::Residue term = ctx_p.to_residue(y);
  ctx_p.exp(term, u2, term);
  ctx_p.mul(acc, term, acc);
  const BigInt v = ctx_p.from_residue(acc).mod(params.q);
  return v == sig.r;
}

bool dsa_verify(const DsaParams& params, const BigInt& y,
                std::span<const std::uint8_t> message, const DsaSignature& sig) {
  return dsa_verify(params, mpint::ModContext(params.p), y, message, sig);
}

namespace {

void append_len_prefixed(std::vector<std::uint8_t>& out, std::span<const std::uint8_t> bytes) {
  const std::uint32_t len = static_cast<std::uint32_t>(bytes.size());
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(len >> (i * 8)));
  out.insert(out.end(), bytes.begin(), bytes.end());
}

}  // namespace

bool dsa_batch_verify(const DsaParams& params, const mpint::ModContext& ctx_p,
                      std::span<const BigInt> ys,
                      std::span<const std::vector<std::uint8_t>> messages,
                      std::span<const DsaCommittedSignature> sigs) {
  require_ctx_p(params, ctx_p, "dsa_batch_verify");
  const std::size_t n = ys.size();
  if (n == 0 || messages.size() != n || sigs.size() != n) return false;

  // Per-signature structural checks, and the binding of each commitment to
  // its reduced r — without it a forger could pick R freely.
  for (const DsaCommittedSignature& cs : sigs) {
    if (cs.sig.r <= BigInt{} || cs.sig.r >= params.q) return false;
    if (cs.sig.s <= BigInt{} || cs.sig.s >= params.q) return false;
    if (cs.commitment <= BigInt{} || cs.commitment >= params.p) return false;
    if (cs.commitment.mod(params.q) != cs.sig.r) return false;
  }

  // Scalars t_i from a DRBG seeded over the whole batch: the batch content
  // is committed before any t_i is known, so a forged member escapes with
  // probability ~2^-64. Deterministic by construction — no caller RNG
  // stream is consumed.
  std::vector<std::uint8_t> seed;
  for (std::size_t i = 0; i < n; ++i) {
    append_len_prefixed(seed, ys[i].to_bytes_be());
    append_len_prefixed(seed, messages[i]);
    append_len_prefixed(seed, sigs[i].sig.r.to_bytes_be());
    append_len_prefixed(seed, sigs[i].sig.s.to_bytes_be());
    append_len_prefixed(seed, sigs[i].commitment.to_bytes_be());
  }
  const auto digest = hash::Sha256::digest(seed);
  hash::HmacDrbg drbg(digest);

  // prod_i R_i^{t_i} == g^{sum_i t_i u1_i} * prod_i y_i^{t_i u2_i} (mod p):
  // the left side is a wide product over 64-bit scalars, the right side one
  // more joint multi-exp with |q|-bit exponents.
  std::vector<BigInt> lhs_bases(n);
  std::vector<BigInt> lhs_exps(n);
  std::vector<BigInt> rhs_bases;
  std::vector<BigInt> rhs_exps;
  rhs_bases.reserve(n + 1);
  rhs_exps.reserve(n + 1);
  rhs_bases.push_back(params.g);
  rhs_exps.push_back(BigInt{});  // sum_i t_i u1_i, accumulated below
  for (std::size_t i = 0; i < n; ++i) {
    BigInt t = mpint::random_bits(drbg, 64);
    if (t.is_zero()) t = BigInt{1};
    const BigInt z = message_digest(params.q, messages[i]);
    const BigInt w = mpint::mod_inverse(sigs[i].sig.s, params.q);
    const BigInt u1 = mpint::mod_mul(z, w, params.q);
    const BigInt u2 = mpint::mod_mul(sigs[i].sig.r, w, params.q);
    lhs_bases[i] = sigs[i].commitment;
    lhs_exps[i] = t;
    rhs_exps[0] = (rhs_exps[0] + t * u1).mod(params.q);
    rhs_bases.push_back(ys[i]);
    rhs_exps.push_back(mpint::mod_mul(t, u2, params.q));
  }
  return ctx_p.multi_exp(lhs_bases, lhs_exps) == ctx_p.multi_exp(rhs_bases, rhs_exps);
}

std::size_t dsa_signature_bits(const DsaParams& params) { return 2 * params.q.bit_length(); }

}  // namespace idgka::sig
