#include "sig/dsa.h"

#include "hash/sha256.h"
#include "mpint/montgomery.h"

namespace idgka::sig {

namespace {

// SHA-256(message) truncated to the bit length of q, per FIPS 186-4 §4.2.
BigInt message_digest(const BigInt& q, std::span<const std::uint8_t> message) {
  const auto digest = hash::Sha256::digest(message);
  BigInt z = BigInt::from_bytes_be(digest);
  const std::size_t qbits = q.bit_length();
  if (z.bit_length() > qbits) z >>= (z.bit_length() - qbits);
  return z;
}

}  // namespace

DsaParams dsa_generate_params(mpint::Rng& rng, std::size_t p_bits, std::size_t q_bits,
                              int mr_rounds) {
  const mpint::SchnorrGroup grp = mpint::generate_schnorr_group(rng, p_bits, q_bits, mr_rounds);
  return DsaParams{grp.p, grp.q, grp.g};
}

DsaKeyPair dsa_generate_keypair(const DsaParams& params, mpint::Rng& rng) {
  DsaKeyPair kp;
  kp.x = mpint::random_range(rng, BigInt{1}, params.q);
  kp.y = mpint::mod_exp(params.g, kp.x, params.p);
  return kp;
}

DsaSignature dsa_sign(const DsaParams& params, const DsaKeyPair& key,
                      std::span<const std::uint8_t> message, mpint::Rng& rng) {
  const BigInt z = message_digest(params.q, message);
  while (true) {
    const BigInt k = mpint::random_range(rng, BigInt{1}, params.q);
    const BigInt r = mpint::mod_exp(params.g, k, params.p).mod(params.q);
    if (r.is_zero()) continue;
    const BigInt k_inv = mpint::mod_inverse(k, params.q);
    const BigInt s = mpint::mod_mul(k_inv, (z + key.x * r).mod(params.q), params.q);
    if (s.is_zero()) continue;
    return DsaSignature{r, s};
  }
}

bool dsa_verify(const DsaParams& params, const BigInt& y,
                std::span<const std::uint8_t> message, const DsaSignature& sig) {
  if (sig.r <= BigInt{} || sig.r >= params.q) return false;
  if (sig.s <= BigInt{} || sig.s >= params.q) return false;
  const BigInt z = message_digest(params.q, message);
  const BigInt w = mpint::mod_inverse(sig.s, params.q);
  const BigInt u1 = mpint::mod_mul(z, w, params.q);
  const BigInt u2 = mpint::mod_mul(sig.r, w, params.q);
  const mpint::MontgomeryCtx ctx(params.p);
  const BigInt v = ctx.mul(ctx.pow(params.g, u1), ctx.pow(y, u2)).mod(params.q);
  return v == sig.r;
}

std::size_t dsa_signature_bits(const DsaParams& params) { return 2 * params.q.bit_length(); }

}  // namespace idgka::sig
