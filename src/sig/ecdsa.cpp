#include "sig/ecdsa.h"

#include "hash/sha256.h"

namespace idgka::sig {

namespace {

BigInt message_digest(const BigInt& n, std::span<const std::uint8_t> message) {
  const auto digest = hash::Sha256::digest(message);
  BigInt z = BigInt::from_bytes_be(digest);
  const std::size_t nbits = n.bit_length();
  if (z.bit_length() > nbits) z >>= (z.bit_length() - nbits);
  return z;
}

}  // namespace

EcdsaKeyPair ecdsa_generate_keypair(const ec::Curve& curve, mpint::Rng& rng) {
  EcdsaKeyPair kp;
  kp.d = mpint::random_range(rng, BigInt{1}, curve.order());
  kp.q = curve.mul(kp.d, curve.generator());
  return kp;
}

EcdsaSignature ecdsa_sign(const ec::Curve& curve, const EcdsaKeyPair& key,
                          std::span<const std::uint8_t> message, mpint::Rng& rng) {
  const BigInt& n = curve.order();
  const BigInt z = message_digest(n, message);
  while (true) {
    const BigInt k = mpint::random_range(rng, BigInt{1}, n);
    const ec::Point kg = curve.mul(k, curve.generator());
    const BigInt r = kg.x.mod(n);
    if (r.is_zero()) continue;
    const BigInt s =
        mpint::mod_mul(mpint::mod_inverse(k, n), (z + key.d * r).mod(n), n);
    if (s.is_zero()) continue;
    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(const ec::Curve& curve, const ec::Point& pub,
                  std::span<const std::uint8_t> message, const EcdsaSignature& sig) {
  const BigInt& n = curve.order();
  if (sig.r <= BigInt{} || sig.r >= n || sig.s <= BigInt{} || sig.s >= n) return false;
  if (pub.infinity || !curve.is_on_curve(pub)) return false;
  const BigInt z = message_digest(n, message);
  const BigInt w = mpint::mod_inverse(sig.s, n);
  const BigInt u1 = mpint::mod_mul(z, w, n);
  const BigInt u2 = mpint::mod_mul(sig.r, w, n);
  const ec::Point pt = curve.mul_add(u1, u2, pub);
  if (pt.infinity) return false;
  return pt.x.mod(n) == sig.r;
}

std::size_t ecdsa_signature_bits(const ec::Curve& curve) {
  return 2 * curve.order().bit_length();
}

}  // namespace idgka::sig
