// DSA (FIPS 186) over a Schnorr group — the paper's "BD with 1024-bit DSA"
// certificate-based baseline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "mpint/bigint.h"
#include "mpint/mod_context.h"
#include "mpint/prime.h"
#include "mpint/random.h"

namespace idgka::sig {

using mpint::BigInt;

/// Domain parameters (p, q, g): |p| = 1024, |q| = 160 in the paper profile.
struct DsaParams {
  BigInt p;
  BigInt q;
  BigInt g;
};

struct DsaKeyPair {
  BigInt x;  ///< private, in [1, q)
  BigInt y;  ///< public, g^x mod p
};

struct DsaSignature {
  BigInt r;
  BigInt s;
};

/// A DSA signature extended with the full commitment R = g^k mod p (the
/// group element whose reduction mod q is `sig.r`). Standard DSA discards
/// R, which is exactly what blocks batch verification — the batched check
/// needs the unreduced element. Carrying R costs |p| extra wire bits but
/// lets n verifications collapse into one multi-exponentiation.
struct DsaCommittedSignature {
  DsaSignature sig;
  BigInt commitment;
};

/// Generates a fresh Schnorr group of the given sizes.
[[nodiscard]] DsaParams dsa_generate_params(mpint::Rng& rng, std::size_t p_bits,
                                            std::size_t q_bits, int mr_rounds = 32);

/// Generates a key pair under `params`, reusing the caller's mod-p context.
[[nodiscard]] DsaKeyPair dsa_generate_keypair(const DsaParams& params,
                                              const mpint::ModContext& ctx_p,
                                              mpint::Rng& rng);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] DsaKeyPair dsa_generate_keypair(const DsaParams& params, mpint::Rng& rng);

/// Signs SHA-256(message) truncated to |q| bits, reusing the caller's mod-p
/// context.
[[nodiscard]] DsaSignature dsa_sign(const DsaParams& params, const mpint::ModContext& ctx_p,
                                    const DsaKeyPair& key,
                                    std::span<const std::uint8_t> message, mpint::Rng& rng);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] DsaSignature dsa_sign(const DsaParams& params, const DsaKeyPair& key,
                                    std::span<const std::uint8_t> message, mpint::Rng& rng);

/// Verifies a signature against public key `y`, reusing the caller's mod-p
/// context.
[[nodiscard]] bool dsa_verify(const DsaParams& params, const mpint::ModContext& ctx_p,
                              const BigInt& y, std::span<const std::uint8_t> message,
                              const DsaSignature& sig);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] bool dsa_verify(const DsaParams& params, const BigInt& y,
                              std::span<const std::uint8_t> message, const DsaSignature& sig);

/// Signs like dsa_sign but additionally returns the commitment R = g^k, so
/// the signature can enter a batch verification.
[[nodiscard]] DsaCommittedSignature dsa_sign_committed(const DsaParams& params,
                                                       const mpint::ModContext& ctx_p,
                                                       const DsaKeyPair& key,
                                                       std::span<const std::uint8_t> message,
                                                       mpint::Rng& rng);

/// Screening batch verification of n (public key, message, committed
/// signature) triples — the small-random-exponent combination behind
/// gq_batch_verify, applied to DSA: after the per-signature range checks
/// and the binding r_i == R_i mod q, a single equation
///   prod_i R_i^{t_i} == g^{sum_i t_i u1_i} * prod_i y_i^{t_i u2_i}  (mod p)
/// with 64-bit scalars t_i derived from an HMAC-DRBG seeded over the whole
/// batch (Fiat-Shamir style: a forger commits to the batch before seeing
/// its t_i) replaces n independent double exponentiations. Both sides run
/// through ModContext::multi_exp. Accepts iff every signature verifies,
/// modulo the 2^-64 screening bound; returns false on empty or mismatched
/// spans.
[[nodiscard]] bool dsa_batch_verify(const DsaParams& params, const mpint::ModContext& ctx_p,
                                    std::span<const BigInt> ys,
                                    std::span<const std::vector<std::uint8_t>> messages,
                                    std::span<const DsaCommittedSignature> sigs);

/// Wire size: r and s are |q| bits each (paper: 2 x 160 bits).
[[nodiscard]] std::size_t dsa_signature_bits(const DsaParams& params);

}  // namespace idgka::sig
