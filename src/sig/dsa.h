// DSA (FIPS 186) over a Schnorr group — the paper's "BD with 1024-bit DSA"
// certificate-based baseline.
#pragma once

#include <cstdint>
#include <span>

#include "mpint/bigint.h"
#include "mpint/mod_context.h"
#include "mpint/prime.h"
#include "mpint/random.h"

namespace idgka::sig {

using mpint::BigInt;

/// Domain parameters (p, q, g): |p| = 1024, |q| = 160 in the paper profile.
struct DsaParams {
  BigInt p;
  BigInt q;
  BigInt g;
};

struct DsaKeyPair {
  BigInt x;  ///< private, in [1, q)
  BigInt y;  ///< public, g^x mod p
};

struct DsaSignature {
  BigInt r;
  BigInt s;
};

/// Generates a fresh Schnorr group of the given sizes.
[[nodiscard]] DsaParams dsa_generate_params(mpint::Rng& rng, std::size_t p_bits,
                                            std::size_t q_bits, int mr_rounds = 32);

/// Generates a key pair under `params`, reusing the caller's mod-p context.
[[nodiscard]] DsaKeyPair dsa_generate_keypair(const DsaParams& params,
                                              const mpint::ModContext& ctx_p,
                                              mpint::Rng& rng);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] DsaKeyPair dsa_generate_keypair(const DsaParams& params, mpint::Rng& rng);

/// Signs SHA-256(message) truncated to |q| bits, reusing the caller's mod-p
/// context.
[[nodiscard]] DsaSignature dsa_sign(const DsaParams& params, const mpint::ModContext& ctx_p,
                                    const DsaKeyPair& key,
                                    std::span<const std::uint8_t> message, mpint::Rng& rng);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] DsaSignature dsa_sign(const DsaParams& params, const DsaKeyPair& key,
                                    std::span<const std::uint8_t> message, mpint::Rng& rng);

/// Verifies a signature against public key `y`, reusing the caller's mod-p
/// context.
[[nodiscard]] bool dsa_verify(const DsaParams& params, const mpint::ModContext& ctx_p,
                              const BigInt& y, std::span<const std::uint8_t> message,
                              const DsaSignature& sig);
/// Compatibility shim: derives a transient mod-p context per call.
[[nodiscard]] bool dsa_verify(const DsaParams& params, const BigInt& y,
                              std::span<const std::uint8_t> message, const DsaSignature& sig);

/// Wire size: r and s are |q| bits each (paper: 2 x 160 bits).
[[nodiscard]] std::size_t dsa_signature_bits(const DsaParams& params);

}  // namespace idgka::sig
