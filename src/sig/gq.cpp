#include "sig/gq.h"

#include <array>
#include <stdexcept>
#include <vector>

#include "hash/sha256.h"

namespace idgka::sig {

BigInt gq_hash_id(const GqParams& params, std::uint32_t id) {
  // Expand SHA-256("idgka-gq-id" || id || ctr) until the value is a unit
  // mod n (overwhelmingly the first candidate).
  for (std::uint32_t ctr = 0;; ++ctr) {
    hash::Sha256 h;
    h.update(std::string_view{"idgka-gq-id|"});
    std::array<std::uint8_t, 8> buf{};
    for (int i = 0; i < 4; ++i) buf[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(id >> (24 - i * 8));
    for (int i = 0; i < 4; ++i) buf[static_cast<std::size_t>(4 + i)] = static_cast<std::uint8_t>(ctr >> (24 - i * 8));
    h.update(buf);
    std::vector<std::uint8_t> material;
    auto digest = h.finalize();
    while (material.size() * 8 < params.n.bit_length() + 64) {
      material.insert(material.end(), digest.begin(), digest.end());
      digest = hash::Sha256::digest(digest);
    }
    BigInt v = BigInt::from_bytes_be(material).mod(params.n);
    if (!v.is_zero() && mpint::gcd(v, params.n).is_one()) return v;
  }
}

BigInt gq_challenge(std::span<const std::uint8_t> first, std::span<const std::uint8_t> second) {
  hash::Sha256 h;
  h.update(std::string_view{"idgka-gq-chal|"});
  std::array<std::uint8_t, 4> len_be{};
  const std::uint32_t len = static_cast<std::uint32_t>(first.size());
  for (int i = 0; i < 4; ++i) len_be[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(len >> (24 - i * 8));
  h.update(len_be);
  h.update(first);
  h.update(second);
  const auto digest = h.finalize();
  return BigInt::from_bytes_be(digest);
}

GqPkg::GqPkg(mpint::Rng& rng, std::size_t modulus_bits, int mr_rounds)
    : GqPkg(mpint::generate_gq_modulus(rng, modulus_bits, BigInt{65537}, mr_rounds)) {}

GqPkg::GqPkg(mpint::GqModulus modulus)
    : key_(std::move(modulus)), params_{key_.n, key_.e}, ctx_(key_.n) {}

BigInt GqPkg::extract(std::uint32_t id) const {
  return ctx_.exp(gq_hash_id(params_, id), key_.d);
}

GqSigner::GqSigner(GqParams params, std::uint32_t id, BigInt secret_key)
    : GqSigner(std::move(params), id, std::move(secret_key), nullptr) {}

GqSigner::GqSigner(GqParams params, std::uint32_t id, BigInt secret_key,
                   std::shared_ptr<const mpint::ModContext> ctx)
    : params_(std::move(params)), id_(id), secret_(std::move(secret_key)), ctx_(std::move(ctx)) {
  if (!ctx_) {
    ctx_ = std::make_shared<const mpint::ModContext>(params_.n);
  } else if (ctx_->modulus() != params_.n) {
    throw std::invalid_argument("GqSigner: context modulus does not match params.n");
  }
}

GqSigner::Commitment GqSigner::commit(mpint::Rng& rng) const {
  Commitment c;
  c.tau = mpint::random_unit(rng, params_.n);
  c.t = ctx_->exp(c.tau, params_.e);
  return c;
}

BigInt GqSigner::respond(const Commitment& commitment, const BigInt& c) const {
  // tau * S^c mod n as one residue chain (single conversion out).
  mpint::Residue acc = ctx_->to_residue(secret_);
  ctx_->exp(acc, c, acc);
  const mpint::Residue tau = ctx_->to_residue(commitment.tau);
  ctx_->mul(acc, tau, acc);
  return ctx_->from_residue(acc);
}

GqSignature GqSigner::sign(std::span<const std::uint8_t> message, mpint::Rng& rng) const {
  const Commitment commitment = commit(rng);
  const BigInt c = gq_challenge(commitment.t.to_bytes_be(), message);
  return GqSignature{respond(commitment, c), c};
}

bool gq_verify(const GqParams& params, const mpint::ModContext& ctx, std::uint32_t id,
               std::span<const std::uint8_t> message, const GqSignature& sig) {
  if (ctx.modulus() != params.n) {
    throw std::invalid_argument("gq_verify: context modulus does not match params.n");
  }
  if (sig.s.is_zero() || sig.s >= params.n || sig.s.negative()) return false;
  // t' = s^e * H(ID)^{-c} mod n, as one joint double exponentiation.
  const BigInt hid = gq_hash_id(params, id);
  BigInt t_prime;
  try {
    const std::array<BigInt, 2> bases{sig.s, mpint::mod_inverse(hid, params.n)};
    const std::array<BigInt, 2> exps{params.e, sig.c};
    t_prime = ctx.multi_exp(bases, exps);
  } catch (const std::domain_error&) {
    return false;
  }
  return gq_challenge(t_prime.to_bytes_be(), message) == sig.c;
}

bool gq_verify(const GqParams& params, std::uint32_t id,
               std::span<const std::uint8_t> message, const GqSignature& sig) {
  return gq_verify(params, mpint::ModContext(params.n), id, message, sig);
}

bool gq_batch_verify(const GqParams& params, const mpint::ModContext& ctx,
                     std::span<const std::uint32_t> ids, std::span<const BigInt> s_values,
                     const BigInt& c, std::span<const std::uint8_t> z_bytes) {
  if (ctx.modulus() != params.n) {
    throw std::invalid_argument("gq_batch_verify: context modulus does not match params.n");
  }
  if (ids.size() != s_values.size() || ids.empty()) return false;
  std::vector<BigInt> h_vals;
  h_vals.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (s_values[i].is_zero() || s_values[i].negative() || s_values[i] >= params.n) {
      return false;
    }
    h_vals.push_back(gq_hash_id(params, ids[i]));
  }
  const BigInt s_prod = ctx.product(s_values);
  const BigInt h_prod = ctx.product(h_vals);
  BigInt t_prime;
  try {
    const std::array<BigInt, 2> bases{s_prod, mpint::mod_inverse(h_prod, params.n)};
    const std::array<BigInt, 2> exps{params.e, c};
    t_prime = ctx.multi_exp(bases, exps);
  } catch (const std::domain_error&) {
    return false;
  }
  return gq_challenge(t_prime.to_bytes_be(), z_bytes) == c;
}

bool gq_batch_verify(const GqParams& params, std::span<const std::uint32_t> ids,
                     std::span<const BigInt> s_values, const BigInt& c,
                     std::span<const std::uint8_t> z_bytes) {
  return gq_batch_verify(params, mpint::ModContext(params.n), ids, s_values, c, z_bytes);
}

std::size_t gq_signature_bits(const GqParams& params) {
  return params.n.bit_length() + 160;
}

}  // namespace idgka::sig
