// SOK-family ID-based signature over the supersingular pairing group — the
// paper's "BD with Sakai et al. signature scheme" baseline.
//
// Sakai-Ohgishi-Kasahara (SCIS 2000) introduced the pairing key-setup this
// family builds on; the concrete two-element signature implemented here is
// the standard ID-based scheme with Cha-Cheon structure, which matches the
// complexity line the paper charges the SOK baseline:
//   - sign: 2 scalar multiplications (no pairing),
//   - verify: 2 Tate pairings + 1 scalar mul + MapToPoint for the ID,
//   - signature = two group elements (S1, S2) (paper: 2 x 194 bits).
//
// Setup (PKG): master s in Z_q^*, Ppub = s*P.
// Extract:     Q_ID = MapToPoint(ID), S_ID = s*Q_ID.
// Sign:        r in Z_q^*, S1 = r*Q_ID, h = H(S1 || M) mod q,
//              S2 = (r + h)*S_ID.
// Verify:      e(P, S2) == e(Ppub, S1 + h*Q_ID).
#pragma once

#include <cstdint>
#include <span>

#include "pairing/tate.h"

namespace idgka::sig {

using mpint::BigInt;

struct SokSignature {
  ec::Point s1;
  ec::Point s2;
};

/// The pairing-side PKG (master key holder).
class SokPkg {
 public:
  SokPkg(const pairing::SsGroup& group, mpint::Rng& rng);

  [[nodiscard]] const ec::Point& public_key() const { return p_pub_; }
  [[nodiscard]] const pairing::SsGroup& group() const { return group_; }

  /// S_ID = s * MapToPoint(ID).
  [[nodiscard]] ec::Point extract(std::uint32_t id) const;

 private:
  const pairing::SsGroup& group_;
  BigInt master_;
  ec::Point p_pub_;
};

/// Maps a 32-bit identity onto the pairing subgroup (MapToPoint).
[[nodiscard]] ec::Point sok_id_point(const pairing::SsGroup& group, std::uint32_t id);

/// Signs with the extracted ID key.
[[nodiscard]] SokSignature sok_sign(const pairing::SsGroup& group, std::uint32_t id,
                                    const ec::Point& secret_key,
                                    std::span<const std::uint8_t> message, mpint::Rng& rng);

/// Verifies with two Tate pairings.
[[nodiscard]] bool sok_verify(const pairing::TatePairing& tate, const ec::Point& p_pub,
                              std::uint32_t id, std::span<const std::uint8_t> message,
                              const SokSignature& sig);

/// Wire size: the paper's SOK line is 2 x 194-bit elements = 388 bits.
inline constexpr std::size_t kSokSignatureBitsPaper = 388;

}  // namespace idgka::sig
