// ECDSA (ANSI X9.62 / FIPS 186) — the paper's "BD with 160-bit ECDSA"
// certificate-based baseline, on secp160r1 by default.
#pragma once

#include <cstdint>
#include <span>

#include "ec/curve.h"
#include "mpint/random.h"

namespace idgka::sig {

using mpint::BigInt;

struct EcdsaKeyPair {
  BigInt d;      ///< private scalar in [1, n)
  ec::Point q;   ///< public point d*G
};

struct EcdsaSignature {
  BigInt r;
  BigInt s;
};

[[nodiscard]] EcdsaKeyPair ecdsa_generate_keypair(const ec::Curve& curve, mpint::Rng& rng);

[[nodiscard]] EcdsaSignature ecdsa_sign(const ec::Curve& curve, const EcdsaKeyPair& key,
                                        std::span<const std::uint8_t> message,
                                        mpint::Rng& rng);

[[nodiscard]] bool ecdsa_verify(const ec::Curve& curve, const ec::Point& pub,
                                std::span<const std::uint8_t> message,
                                const EcdsaSignature& sig);

/// Wire size: r and s at |n| bits each (paper treats them as 2 x 160).
[[nodiscard]] std::size_t ecdsa_signature_bits(const ec::Curve& curve);

}  // namespace idgka::sig
