#include "sig/sok.h"

#include "hash/sha256.h"

namespace idgka::sig {

namespace {

// h = H(S1 || M) reduced into [1, q).
BigInt signature_challenge(const BigInt& q, const ec::Point& s1,
                           std::span<const std::uint8_t> message) {
  hash::Sha256 h;
  h.update(std::string_view{"idgka-sok-chal|"});
  const auto xb = s1.x.to_bytes_be();
  const auto yb = s1.y.to_bytes_be();
  std::array<std::uint8_t, 2> xlen{static_cast<std::uint8_t>(xb.size() >> 8),
                                   static_cast<std::uint8_t>(xb.size())};
  h.update(xlen);
  h.update(xb);
  h.update(yb);
  h.update(message);
  BigInt v = BigInt::from_bytes_be(h.finalize()).mod(q);
  if (v.is_zero()) v = BigInt{1};
  return v;
}

}  // namespace

SokPkg::SokPkg(const pairing::SsGroup& group, mpint::Rng& rng)
    : group_(group),
      master_(mpint::random_range(rng, BigInt{1}, group.q())),
      p_pub_(group.curve().mul(master_, group.generator())) {}

ec::Point SokPkg::extract(std::uint32_t id) const {
  return group_.curve().mul(master_, sok_id_point(group_, id));
}

ec::Point sok_id_point(const pairing::SsGroup& group, std::uint32_t id) {
  std::array<std::uint8_t, 4> id_be{};
  for (int i = 0; i < 4; ++i) id_be[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(id >> (24 - i * 8));
  return group.map_to_point(id_be);
}

SokSignature sok_sign(const pairing::SsGroup& group, std::uint32_t id,
                      const ec::Point& secret_key, std::span<const std::uint8_t> message,
                      mpint::Rng& rng) {
  const ec::Point q_id = sok_id_point(group, id);
  const BigInt r = mpint::random_range(rng, BigInt{1}, group.q());
  SokSignature sig;
  sig.s1 = group.curve().mul(r, q_id);
  const BigInt h = signature_challenge(group.q(), sig.s1, message);
  sig.s2 = group.curve().mul((r + h).mod(group.q()), secret_key);
  return sig;
}

bool sok_verify(const pairing::TatePairing& tate, const ec::Point& p_pub, std::uint32_t id,
                std::span<const std::uint8_t> message, const SokSignature& sig) {
  const pairing::SsGroup& group = tate.group();
  const ec::Curve& curve = group.curve();
  if (sig.s1.infinity || sig.s2.infinity) return false;
  if (!curve.is_on_curve(sig.s1) || !curve.is_on_curve(sig.s2)) return false;
  const ec::Point q_id = sok_id_point(group, id);
  const BigInt h = signature_challenge(group.q(), sig.s1, message);
  // e(P, S2) == e(Ppub, S1 + h*Q_ID)
  const pairing::Fp2 lhs = tate.pair(group.generator(), sig.s2);
  const pairing::Fp2 rhs = tate.pair(p_pub, curve.add(sig.s1, curve.mul(h, q_id)));
  return lhs == rhs;
}

}  // namespace idgka::sig
