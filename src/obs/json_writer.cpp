#include "obs/json_writer.h"

#include <cstdio>

namespace idgka::obs {

void JsonWriter::prefix(bool is_key) {
  if (after_key_) {
    // Value completing a key: no comma, the key already placed one.
    after_key_ = is_key;  // a key right after a key is malformed; tolerate
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back()) out_ += ',';
    stack_.back() = true;
  }
  after_key_ = is_key;
}

JsonWriter& JsonWriter::begin_object() {
  prefix(false);
  out_ += '{';
  stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (!stack_.empty()) stack_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix(false);
  out_ += '[';
  stack_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (!stack_.empty()) stack_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  prefix(true);
  out_ += '"';
  for (const char c : k) {
    if (c == '"' || c == '\\') out_ += '\\';
    out_ += c;
  }
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  prefix(false);
  out_ += '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  prefix(false);
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix(false);
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix(false);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix(false);
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::null() {
  prefix(false);
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  prefix(false);
  out_ += json;
  return *this;
}

}  // namespace idgka::obs
