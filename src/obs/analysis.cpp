#include "obs/analysis.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "obs/json_writer.h"

namespace idgka::obs::analysis {

namespace {

/// Per-track reconstruction state.
struct TrackState {
  std::string name;                 ///< from the thread_name metadata
  std::vector<std::size_t> stack;   ///< open span indices, innermost last
  std::uint64_t last_ts = 0;
};

std::string format_ms(std::uint64_t us) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(us) / 1000.0);
  return buf;
}

/// Exclusive time of every span in `op`'s subtree, keyed by category.
void accumulate_subtree(const std::vector<Span>& spans, std::size_t idx,
                        std::map<std::string, std::uint64_t>& by_cat) {
  const Span& s = spans[idx];
  by_cat[s.cat] += s.self_us;
  for (const std::size_t child : s.children) accumulate_subtree(spans, child, by_cat);
}

std::vector<PathStep> critical_path(const std::vector<Span>& spans, std::size_t idx) {
  std::vector<PathStep> path;
  for (;;) {
    const Span& s = spans[idx];
    path.push_back({s.name, s.cat, s.duration_us(), s.self_us});
    if (s.children.empty()) break;
    // Longest child wins; ties break on earliest start then span order, so
    // the path is deterministic for a deterministic trace.
    std::size_t best = s.children.front();
    for (const std::size_t child : s.children) {
      const Span& c = spans[child];
      const Span& b = spans[best];
      if (c.duration_us() > b.duration_us() ||
          (c.duration_us() == b.duration_us() && c.start_us < b.start_us)) {
        best = child;
      }
    }
    idx = best;
  }
  return path;
}

}  // namespace

std::vector<Span> build_spans(const json::JsonValue& trace) {
  if (!trace.is_object() || !trace.has("traceEvents")) {
    throw std::invalid_argument("trace analysis: not a Chrome trace export");
  }
  const json::JsonArray& events = trace.at("traceEvents").as_array();

  // Pass 1: track names from the thread_name metadata records.
  std::map<std::uint64_t, TrackState> tracks;
  for (const json::JsonValue& e : events) {
    if (e["ph"].is_string() && e["ph"].as_string() == "M" &&
        e["name"].as_string() == "thread_name") {
      tracks[e.at("tid").as_uint()].name = e.at("args").at("name").as_string();
    }
  }

  // Pass 2: match B/E pairs per track. Spans are strictly LIFO per track
  // (they come from RAII scopes on one thread), so E always closes the
  // innermost open span; a stray E (begin lost to ring wrap) is dropped.
  std::vector<Span> spans;
  for (const json::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") continue;
    const std::uint64_t tid = e.at("tid").as_uint();
    TrackState& track = tracks[tid];
    if (track.name.empty()) track.name = "tid" + std::to_string(tid);
    const std::uint64_t ts = e.at("ts").as_uint();
    track.last_ts = std::max(track.last_ts, ts);
    if (ph == "B") {
      Span s;
      s.name = e.at("name").as_string();
      s.cat = e.at("cat").as_string();
      s.track = track.name;
      s.start_us = ts;
      s.depth = static_cast<int>(track.stack.size());
      if (!track.stack.empty()) s.parent = track.stack.back();
      const std::size_t idx = spans.size();
      if (s.parent != Span::kNoParent) spans[s.parent].children.push_back(idx);
      spans.push_back(std::move(s));
      track.stack.push_back(idx);
    } else if (ph == "E") {
      if (track.stack.empty()) continue;
      spans[track.stack.back()].end_us = ts;
      track.stack.pop_back();
    }
    // Instants ("i") only advance last_ts; they carry no duration.
  }

  // Unclosed spans (trace ended mid-op): close at the track's last event.
  for (auto& [tid, track] : tracks) {
    for (const std::size_t idx : track.stack) {
      spans[idx].end_us = std::max(track.last_ts, spans[idx].start_us);
      spans[idx].truncated = true;
    }
  }

  for (Span& s : spans) {
    std::uint64_t child_us = 0;
    for (const std::size_t child : s.children) child_us += spans[child].duration_us();
    s.self_us = s.duration_us() >= child_us ? s.duration_us() - child_us : 0;
  }
  return spans;
}

Report analyze(std::string_view trace_json, std::size_t top_k) {
  const json::JsonValue doc = json::parse(trace_json);
  Report report;
  report.spans = build_spans(doc);

  std::uint64_t start = ~std::uint64_t{0};
  std::uint64_t end = 0;
  for (const json::JsonValue& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M") continue;
    ++report.event_count;
    if (ph == "i") ++report.instant_count;
    const std::uint64_t ts = e.at("ts").as_uint();
    start = std::min(start, ts);
    end = std::max(end, ts);
  }
  report.trace_start_us = report.event_count == 0 ? 0 : start;
  report.trace_end_us = end;
  report.span_count = report.spans.size();

  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    const Span& s = report.spans[i];
    if (s.truncated) ++report.truncated_spans;
    LayerStat& layer = report.layers[s.cat];
    ++layer.spans;
    layer.self_us += s.self_us;
    layer.total_us += s.duration_us();
    if (s.name.rfind("sim.op.", 0) == 0) {
      OpSummary op;
      op.name = s.name;
      op.track = s.track;
      op.start_us = s.start_us;
      op.duration_us = s.duration_us();
      accumulate_subtree(report.spans, i, op.self_us_by_cat);
      op.critical_path = critical_path(report.spans, i);
      report.ops.push_back(std::move(op));
    }
  }
  std::stable_sort(report.ops.begin(), report.ops.end(),
                   [](const OpSummary& a, const OpSummary& b) {
                     return a.start_us != b.start_us ? a.start_us < b.start_us
                                                     : a.name < b.name;
                   });

  report.top_slowest.resize(report.spans.size());
  for (std::size_t i = 0; i < report.top_slowest.size(); ++i) report.top_slowest[i] = i;
  std::stable_sort(report.top_slowest.begin(), report.top_slowest.end(),
                   [&](std::size_t a, std::size_t b) {
                     const Span& sa = report.spans[a];
                     const Span& sb = report.spans[b];
                     if (sa.duration_us() != sb.duration_us()) {
                       return sa.duration_us() > sb.duration_us();
                     }
                     if (sa.start_us != sb.start_us) return sa.start_us < sb.start_us;
                     return sa.name < sb.name;
                   });
  if (report.top_slowest.size() > top_k) report.top_slowest.resize(top_k);
  return report;
}

void Report::write(JsonWriter& w) const {
  w.begin_object();
  w.kv("events", event_count);
  w.kv("spans", span_count);
  w.kv("instants", instant_count);
  w.kv("truncated_spans", truncated_spans);
  w.kv("trace_start_us", trace_start_us);
  w.kv("trace_end_us", trace_end_us);
  w.key("layers").begin_object();
  for (const auto& [cat, stat] : layers) {
    w.key(cat).begin_object();
    w.kv("spans", stat.spans);
    w.kv("self_us", stat.self_us);
    w.kv("total_us", stat.total_us);
    w.end_object();
  }
  w.end_object();
  w.key("ops").begin_array();
  for (const OpSummary& op : ops) {
    w.begin_object();
    w.kv("name", op.name);
    w.kv("track", op.track);
    w.kv("start_us", op.start_us);
    w.kv("duration_us", op.duration_us);
    w.key("self_us_by_cat").begin_object();
    for (const auto& [cat, us] : op.self_us_by_cat) w.kv(cat, us);
    w.end_object();
    w.key("critical_path").begin_array();
    for (const PathStep& step : op.critical_path) {
      w.begin_object();
      w.kv("name", step.name);
      w.kv("cat", step.cat);
      w.kv("duration_us", step.duration_us);
      w.kv("self_us", step.self_us);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("top_slowest").begin_array();
  for (const std::size_t idx : top_slowest) {
    const Span& s = spans[idx];
    w.begin_object();
    w.kv("name", s.name);
    w.kv("cat", s.cat);
    w.kv("track", s.track);
    w.kv("start_us", s.start_us);
    w.kv("duration_us", s.duration_us());
    w.kv("self_us", s.self_us);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

std::string Report::to_json() const {
  JsonWriter w;
  write(w);
  return w.take();
}

std::string Report::to_markdown() const {
  std::string md;
  md += "# Trace report\n\n";
  md += "- events: " + std::to_string(event_count) + " (spans: " + std::to_string(span_count) +
        ", instants: " + std::to_string(instant_count) +
        ", truncated spans: " + std::to_string(truncated_spans) + ")\n";
  md += "- window: [" + format_ms(trace_start_us) + " ms, " + format_ms(trace_end_us) +
        " ms] (" + format_ms(trace_end_us - trace_start_us) + " ms)\n\n";

  md += "## Latency attribution by layer\n\n";
  md += "| layer | spans | self ms | self % | total ms |\n";
  md += "|---|---:|---:|---:|---:|\n";
  std::uint64_t self_total = 0;
  for (const auto& [cat, stat] : layers) self_total += stat.self_us;
  for (const auto& [cat, stat] : layers) {
    const double pct = self_total == 0
                           ? 0.0
                           : 100.0 * static_cast<double>(stat.self_us) /
                                 static_cast<double>(self_total);
    char pct_buf[16];
    std::snprintf(pct_buf, sizeof pct_buf, "%.1f", pct);
    md += "| " + cat + " | " + std::to_string(stat.spans) + " | " + format_ms(stat.self_us) +
          " | " + pct_buf + " | " + format_ms(stat.total_us) + " |\n";
  }

  md += "\n## Operations\n\n";
  if (ops.empty()) {
    md += "_no sim.op.* spans in this trace_\n";
  } else {
    md += "| op | track | start ms | duration ms | layer breakdown (self ms) |\n";
    md += "|---|---|---:|---:|---|\n";
    for (const OpSummary& op : ops) {
      std::string breakdown;
      for (const auto& [cat, us] : op.self_us_by_cat) {
        if (!breakdown.empty()) breakdown += ", ";
        breakdown += cat + " " + format_ms(us);
      }
      md += "| " + op.name + " | " + op.track + " | " + format_ms(op.start_us) + " | " +
            format_ms(op.duration_us) + " | " + breakdown + " |\n";
    }
    md += "\n### Critical paths\n\n";
    for (const OpSummary& op : ops) {
      md += "- `" + op.name + "` @ " + format_ms(op.start_us) + " ms: ";
      for (std::size_t i = 0; i < op.critical_path.size(); ++i) {
        const PathStep& step = op.critical_path[i];
        if (i > 0) md += " -> ";
        md += step.name + " (" + format_ms(step.duration_us) + " ms)";
      }
      md += "\n";
    }
  }

  md += "\n## Slowest spans\n\n";
  md += "| name | layer | track | start ms | duration ms | self ms |\n";
  md += "|---|---|---|---:|---:|---:|\n";
  for (const std::size_t idx : top_slowest) {
    const Span& s = spans[idx];
    md += "| " + s.name + " | " + s.cat + " | " + s.track + " | " + format_ms(s.start_us) +
          " | " + format_ms(s.duration_us()) + " | " + format_ms(s.self_us) + " |\n";
  }
  return md;
}

}  // namespace idgka::obs::analysis
