// Trace analytics: span trees, latency attribution and critical paths
// reconstructed from an exported Chrome trace.
//
// The flight recorder (obs/trace.h) exports raw begin/end/instant events;
// nothing in the export says *where the time went*. This layer rebuilds
// the structure: per-track span trees from matched B/E pairs, self-time
// per span (duration minus child durations), latency attribution by
// category — the categories are the repo's layers (wire/net/engine/gka/
// cluster/sim) — per-operation summaries for every `sim.op.*` span (one
// per rekey/form/join/leave/partition/merge), each with its own layer
// breakdown and critical path (the longest-child chain from the op to a
// leaf), plus a global top-k of the slowest spans.
//
// Input is the exported JSON (tools/trace_report reads a file; tests feed
// export_chrome_trace() straight back in), so the analytics exercise the
// exporter for free and work on traces recorded by any build.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/json_reader.h"

namespace idgka::obs {

class JsonWriter;

namespace analysis {

/// One reconstructed span (a matched B/E pair on one track).
struct Span {
  std::string name;
  std::string cat;
  std::string track;
  std::uint64_t start_us = 0;
  std::uint64_t end_us = 0;
  /// Duration minus the summed durations of direct children: the time this
  /// span spent in its own frame, the quantity attribution sums.
  std::uint64_t self_us = 0;
  std::size_t parent = kNoParent;  ///< index into the span vector
  std::vector<std::size_t> children;
  int depth = 0;
  /// True when the trace ended (or the ring wrapped) before the end event:
  /// end_us is then the track's last timestamp, not a real close.
  bool truncated = false;

  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  [[nodiscard]] std::uint64_t duration_us() const { return end_us - start_us; }
};

/// Per-category (= per-layer) attribution totals.
struct LayerStat {
  std::uint64_t spans = 0;
  std::uint64_t self_us = 0;   ///< exclusive time — sums to total span time
  std::uint64_t total_us = 0;  ///< inclusive time (overlapping; context only)
};

/// One step of a critical path: the longest-child chain below an op span.
struct PathStep {
  std::string name;
  std::string cat;
  std::uint64_t duration_us = 0;
  std::uint64_t self_us = 0;
};

/// Summary of one operation span (name starts with "sim.op.").
struct OpSummary {
  std::string name;
  std::string track;
  std::uint64_t start_us = 0;
  std::uint64_t duration_us = 0;
  /// Exclusive time inside this op's subtree, keyed by category; sums to
  /// duration_us (the op's own self time is attributed to its category).
  std::map<std::string, std::uint64_t> self_us_by_cat;
  /// Root-to-leaf chain following the longest child at every level.
  std::vector<PathStep> critical_path;
};

struct Report {
  std::size_t event_count = 0;
  std::size_t span_count = 0;
  std::size_t instant_count = 0;
  std::size_t truncated_spans = 0;
  std::uint64_t trace_start_us = 0;
  std::uint64_t trace_end_us = 0;
  std::map<std::string, LayerStat> layers;
  std::vector<OpSummary> ops;           ///< in start order
  std::vector<std::size_t> top_slowest; ///< span indices, slowest first
  std::vector<Span> spans;              ///< every reconstructed span

  /// Deterministic JSON (ops, layers, top-k; spans are summarized, not
  /// dumped — the raw trace already exists).
  [[nodiscard]] std::string to_json() const;
  void write(JsonWriter& w) const;
  /// Human-readable markdown: layer table, per-op table with critical
  /// paths, top-k slow spans.
  [[nodiscard]] std::string to_markdown() const;
};

/// Rebuilds spans from a parsed Chrome trace document (the exporter's
/// shape: {"traceEvents":[...]}). Throws std::invalid_argument when the
/// document is not a trace export.
[[nodiscard]] std::vector<Span> build_spans(const json::JsonValue& trace);

/// Full analysis over an exported trace JSON string.
[[nodiscard]] Report analyze(std::string_view trace_json, std::size_t top_k = 10);

}  // namespace analysis
}  // namespace idgka::obs
