// Minimal strict JSON reader: the inverse of obs::JsonWriter.
//
// Every artifact this repo emits — registry snapshots, Chrome traces,
// matrix reports, bench JSONs — is produced by JsonWriter, so the reader
// only has to cover that dialect of JSON faithfully: objects, arrays,
// strings with the writer's escapes, integers, fixed-format doubles,
// booleans and null. It parses into a small immutable DOM (JsonValue) used
// by the trace-analytics layer, the matrix baseline comparison and the
// bench regression tool.
//
// The parser is strict where it matters for tooling honesty — trailing
// garbage, unterminated containers and malformed escapes all throw
// JsonParseError with a byte offset — and deliberately does NOT implement
// the full RFC zoo (surrogate pairs decode to '?', numbers outside
// uint64/int64/double are an error).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace idgka::obs::json {

class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " at offset " + std::to_string(offset)), offset_(offset) {}
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

class JsonValue;
using JsonArray = std::vector<JsonValue>;
/// Object keys keep insertion order irrelevance: a sorted map matches the
/// writer's deterministic output and gives O(log n) field lookup.
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kUint, kInt, kDouble, kString, kArray, kObject };

  JsonValue() = default;
  explicit JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}
  explicit JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}
  explicit JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}
  explicit JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  explicit JsonValue(JsonArray a) : kind_(Kind::kArray), array_(std::make_shared<JsonArray>(std::move(a))) {}
  explicit JsonValue(JsonObject o) : kind_(Kind::kObject), object_(std::make_shared<JsonObject>(std::move(o))) {}

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_number() const {
    return kind_ == Kind::kUint || kind_ == Kind::kInt || kind_ == Kind::kDouble;
  }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors throw std::logic_error on kind mismatch — tooling
  /// reading an unexpected shape should fail loudly, not misreport.
  [[nodiscard]] bool as_bool() const;
  /// Any numeric kind, converted. Throws on non-numbers.
  [[nodiscard]] double as_double() const;
  /// Integral value; doubles are rejected (a "wall_ms":1.5 is not a count).
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const JsonArray& as_array() const;
  [[nodiscard]] const JsonObject& as_object() const;

  /// Object field access; null-kind reference when absent (never throws).
  [[nodiscard]] const JsonValue& operator[](std::string_view key) const;
  /// Object field that must exist; throws std::out_of_range otherwise.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::uint64_t uint_ = 0;
  std::int64_t int_ = 0;
  double double_ = 0.0;
  std::string string_;
  // shared_ptr keeps JsonValue copyable and cheap to pass around while the
  // DOM stays immutable after parse.
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses exactly one JSON document (trailing whitespace allowed, anything
/// else throws JsonParseError).
[[nodiscard]] JsonValue parse(std::string_view text);

/// Flattens every numeric leaf into "a.b.0.c" -> value (array indices are
/// path segments). The regression tools diff two flattened maps.
[[nodiscard]] std::map<std::string, double> flatten_numbers(const JsonValue& root);

}  // namespace idgka::obs::json
