#include "obs/registry.h"

#include <bit>
#include <cmath>

namespace idgka::obs {

// ---------------------------------------------------------------- Histogram

std::size_t Histogram::bucket_index(std::uint64_t v) {
  return static_cast<std::size_t>(std::bit_width(v));
}

std::pair<std::uint64_t, std::uint64_t> Histogram::bucket_bounds(std::size_t i) {
  if (i == 0) return {0, 0};
  const std::uint64_t lo = 1ULL << (i - 1);
  const std::uint64_t hi = (i >= 64) ? ~0ULL : (1ULL << i) - 1;
  return {lo, hi};
}

void Histogram::record(std::uint64_t v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::min() const {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

std::uint64_t Histogram::max() const { return max_.load(std::memory_order_relaxed); }

std::uint64_t Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  // Nearest-rank over the bucket counts (same rank rule as
  // sim::percentile_us), then linear interpolation inside the bucket,
  // clamped to the tracked global min/max so the endpoints are exact.
  double rank = q / 100.0 * static_cast<double>(n);
  std::uint64_t target = static_cast<std::uint64_t>(std::ceil(rank));
  if (target == 0) target = 1;
  if (target > n) target = n;

  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = bucket(i);
    if (in_bucket == 0) continue;
    if (seen + in_bucket < target) {
      seen += in_bucket;
      continue;
    }
    auto [lo, hi] = bucket_bounds(i);
    // Position of the target rank inside this bucket, in (0, 1].
    const double frac =
        static_cast<double>(target - seen) / static_cast<double>(in_bucket);
    const double est =
        static_cast<double>(lo) + frac * static_cast<double>(hi - lo);
    std::uint64_t v = static_cast<std::uint64_t>(est);
    if (v < min()) v = min();
    if (v > max()) v = max();
    return v;
  }
  return max();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

// ----------------------------------------------------------------- Snapshot

Snapshot Snapshot::delta_since(const Snapshot& earlier) const {
  Snapshot d;
  for (const auto& [name, v] : counters) {
    const auto it = earlier.counters.find(name);
    const std::uint64_t base = it == earlier.counters.end() ? 0 : it->second;
    if (v > base) d.counters.emplace(name, v - base);
  }
  for (const auto& [name, v] : probes) {
    const auto it = earlier.probes.find(name);
    const std::uint64_t base = it == earlier.probes.end() ? 0 : it->second;
    if (v > base) d.probes.emplace(name, v - base);
  }
  // Gauges are levels: the delta reports the later level as-is.
  d.gauges = gauges;
  for (const auto& [name, h] : histograms) {
    const auto it = earlier.histograms.find(name);
    const std::uint64_t base_count = it == earlier.histograms.end() ? 0 : it->second.count;
    const std::uint64_t base_sum = it == earlier.histograms.end() ? 0 : it->second.sum;
    if (h.count <= base_count) continue;
    Hist win = h;  // min/max/percentiles stay the later summary's
    win.count = h.count - base_count;
    win.sum = h.sum >= base_sum ? h.sum - base_sum : 0;
    d.histograms.emplace(name, win);
  }
  return d;
}

void Snapshot::write(JsonWriter& w) const {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, v] : counters) w.kv(name, v);
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, v] : gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name).begin_object();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.kv("min", h.min);
    w.kv("max", h.max);
    w.kv("p50", h.p50);
    w.kv("p90", h.p90);
    w.kv("p99", h.p99);
    w.end_object();
  }
  w.end_object();
  w.key("probes").begin_object();
  for (const auto& [name, v] : probes) w.kv(name, v);
  w.end_object();
  w.end_object();
}

std::string Snapshot::to_json() const {
  JsonWriter w;
  write(w);
  return w.take();
}

// ----------------------------------------------------------------- Registry

Registry& Registry::global() {
  static Registry* r = new Registry();  // leaked: outlives static teardown
  return *r;
}

// Instruments hold atomics (not movable): try_emplace constructs them in
// place, and node-based map storage keeps their addresses stable forever.

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& Registry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::string(name)).first->second;
}

std::string Registry::labeled_name(std::string_view base, std::string_view label) {
  // mu_ held by the caller. The family ledger only grows while under the
  // cap, so a hostile label domain costs at most kMaxLabelsPerFamily
  // entries per base name before collapsing into the overflow bucket.
  auto& family = labels_[std::string(base)];
  if (!family.contains(label)) {
    if (family.size() >= kMaxLabelsPerFamily) {
      label = "overflow";
    } else {
      family.emplace(std::string(label), true);
    }
  }
  std::string name;
  name.reserve(base.size() + label.size() + 2);
  name.append(base);
  name.push_back('{');
  name.append(label);
  name.push_back('}');
  return name;
}

Counter& Registry::counter(std::string_view base, std::string_view label) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string name = labeled_name(base, label);
  const auto it = counters_.find(name);
  if (it != counters_.end()) return it->second;
  return counters_.try_emplace(std::move(name)).first->second;
}

Gauge& Registry::gauge(std::string_view base, std::string_view label) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string name = labeled_name(base, label);
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second;
  return gauges_.try_emplace(std::move(name)).first->second;
}

Histogram& Registry::histogram(std::string_view base, std::string_view label) {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string name = labeled_name(base, label);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(std::move(name)).first->second;
}

void Registry::register_probe(std::string_view name, Probe probe) {
  const std::lock_guard<std::mutex> lock(mu_);
  probes_[std::string(name)] = std::move(probe);
}

void Registry::write_snapshot(JsonWriter& w) const {
  const std::lock_guard<std::mutex> lock(mu_);
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : counters_) w.kv(name, c.value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value());
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms_) {
    w.key(name).begin_object();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("min", h.min());
    w.kv("max", h.max());
    w.kv("p50", h.percentile(50.0));
    w.kv("p90", h.percentile(90.0));
    w.kv("p99", h.percentile(99.0));
    w.end_object();
  }
  w.end_object();
  w.key("probes").begin_object();
  for (const auto& [name, probe] : probes_) w.kv(name, probe ? probe() : 0);
  w.end_object();
  w.end_object();
}

std::string Registry::snapshot_json() const {
  JsonWriter w;
  write_snapshot(w);
  return w.take();
}

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters.emplace(name, c.value());
  for (const auto& [name, g] : gauges_) s.gauges.emplace(name, g.value());
  for (const auto& [name, h] : histograms_) {
    s.histograms.emplace(name, Snapshot::Hist{h.count(), h.sum(), h.min(), h.max(),
                                              h.percentile(50.0), h.percentile(90.0),
                                              h.percentile(99.0)});
  }
  for (const auto& [name, probe] : probes_) s.probes.emplace(name, probe ? probe() : 0);
  return s;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

}  // namespace idgka::obs
