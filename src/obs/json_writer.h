// Minimal deterministic JSON writer shared by every metrics exporter.
//
// The simulation metrics (src/sim/metrics.cpp), the obs::Registry snapshot
// and the Chrome trace exporter all emit hand-rolled JSON; this writer is
// the one place that knows how to do it correctly: comma placement is
// tracked per nesting level, strings are escaped, and doubles are printed
// with a fixed "%.3f" format — so the output of a deterministic producer is
// byte-identical across runs (the property the sim determinism tests and
// the trace-determinism test assert).
//
// The writer never validates structure beyond comma/nesting bookkeeping;
// callers are expected to emit well-formed sequences (every begin_* paired
// with the matching end_*, key() only inside objects).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace idgka::obs {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"k":` (with a leading comma when needed). The next value /
  /// begin_* call supplies the value.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);  ///< quoted + escaped
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(double v);  ///< fixed "%.3f" — deterministic
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  /// Any other integral type routes through the 64-bit overloads (covers
  /// size_t/uint32_t on every LP64/ILP32 model without overload clashes).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
             !std::is_same_v<T, std::uint64_t> && !std::is_same_v<T, std::int64_t>)
  JsonWriter& value(T v) {
    if constexpr (std::is_signed_v<T>) return value(static_cast<std::int64_t>(v));
    else return value(static_cast<std::uint64_t>(v));
  }
  /// Emits `null`.
  JsonWriter& null();
  /// Splices pre-rendered JSON as one value (comma bookkeeping applies).
  JsonWriter& raw(std::string_view json);

  /// key(k) + value(v) in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  [[nodiscard]] const std::string& str() const { return out_; }
  /// Moves the buffer out; the writer is reusable (empty) afterwards.
  [[nodiscard]] std::string take() {
    std::string s = std::move(out_);
    out_.clear();
    stack_.clear();
    return s;
  }

 private:
  /// Comma bookkeeping before a value or key at the current level.
  void prefix(bool is_key);

  std::string out_;
  /// One flag per open container: "has at least one element".
  std::vector<bool> stack_;
  /// A key() was just written; the next value is its payload (no comma).
  bool after_key_ = false;
};

}  // namespace idgka::obs
