// Process-wide metrics registry: named counters, gauges and log-scale
// histograms with cheap thread-safe updates.
//
// One Registry (Registry::global()) absorbs the counters that were
// previously scattered across layers — net::TrafficStats totals, wire codec
// throughput, engine resume/batch bookkeeping, mpint::op_counts — behind a
// single deterministic snapshot (sorted by name, rendered through
// obs::JsonWriter).
//
// Update cost discipline (these sit on per-frame / per-mod-mul hot paths):
//   * instruments are created once (mutex-guarded get-or-create) and held
//     by reference — the idiom is a function-local static:
//       static obs::Counter& c = obs::Registry::global().counter("net.tx");
//       c.add(1);
//   * every update is a relaxed atomic RMW, no locks, no allocation;
//   * existing structs (TrafficStats, OpCounts) are NOT replaced — layers
//     either bump a registry counter at the same site or expose a Probe
//     (a callback sampled at snapshot time) over their own totals.
//
// Instrument references returned by the registry stay valid for the
// process lifetime (instruments are never destroyed, only reset to zero).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>

#include "obs/json_writer.h"

namespace idgka::obs {

/// Monotonic event counter.
///
/// Updates are striped per thread (the per-cpu-stats idiom): each thread
/// lands on one cache-line-aligned slot, so hot-path add() from many
/// executor shards never bounces one contended line between cores.
/// value() sums the stripes — reads are rare (snapshot time), writes are
/// constant. Sum-of-relaxed-stripes is exact for quiescent reads (tests,
/// snapshots at barriers) and momentarily stale while writers race, same
/// contract as the single-atomic counter it replaces.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    slots_[stripe()].v.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Slot& s : slots_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }
  void reset() {
    for (Slot& s : slots_) s.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kStripes = 8;  // power of two
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> v{0};
  };

  static std::size_t stripe() {
    static thread_local const std::size_t s =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) & (kStripes - 1);
    return s;
  }

  Slot slots_[kStripes];
};

/// Last-written / high-watermark value.
class Gauge {
 public:
  void set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Raises the gauge to `v` when larger (high-watermark semantics).
  void max_of(std::int64_t v) {
    std::int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur && !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Fixed-bucket base-2 log-scale histogram of non-negative samples.
///
/// Bucket i counts samples whose bit width is i: bucket 0 holds the value
/// 0, bucket i (i >= 1) holds [2^(i-1), 2^i). 65 buckets cover the full
/// uint64 range with no configuration and no allocation; record() is two
/// relaxed RMWs plus two bounded CAS loops (min/max).
///
/// percentile() answers from the bucket counts by nearest-rank over
/// buckets, linearly interpolated inside the winning bucket — exact for
/// the tracked min/max endpoints, within one octave everywhere else (the
/// obs test pins both properties).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void record(std::uint64_t v);

  [[nodiscard]] std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t min() const;  ///< 0 when empty
  [[nodiscard]] std::uint64_t max() const;  ///< 0 when empty
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  /// Index of the bucket `v` lands in (exposed for the boundary tests).
  [[nodiscard]] static std::size_t bucket_index(std::uint64_t v);
  /// Inclusive value range of bucket i: [lo, hi].
  [[nodiscard]] static std::pair<std::uint64_t, std::uint64_t> bucket_bounds(std::size_t i);

  /// Estimated q-th percentile (q in [0, 100]); 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double q) const;

  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Callback sampled at snapshot time — adapts an existing counter that
/// lives outside the registry (mpint::op_counts, a TrafficStats total).
using Probe = std::function<std::uint64_t()>;

/// One parseable point-in-time capture of a Registry: every counter, gauge
/// and histogram value plus every probe *sampled at capture time* — so a
/// delta between two snapshots also covers the cumulative externals the
/// probes adapt (crypto.exps over a window, not over the process).
///
/// Snapshots subtract: delta_since(earlier) isolates the increments of one
/// region (a matrix cell, one test) from process-lifetime totals.
struct Snapshot {
  struct Hist {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t min = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, Hist> histograms;
  std::map<std::string, std::uint64_t> probes;

  /// Increments since `earlier`: counters and probes subtract (clamped at
  /// zero — a reset between the snapshots reads as no increment, never an
  /// underflow); gauges keep this snapshot's value (they are levels, not
  /// totals); histograms subtract count/sum and keep this snapshot's
  /// min/max/percentiles (octave-resolution summaries do not subtract).
  /// Instruments with a zero counter/count delta are omitted, so a cell's
  /// delta lists exactly the instruments the cell touched.
  [[nodiscard]] Snapshot delta_since(const Snapshot& earlier) const;

  /// Deterministic JSON, same shape as Registry::snapshot_json().
  void write(JsonWriter& w) const;
  [[nodiscard]] std::string to_json() const;
};

class Registry {
 public:
  /// The process-wide registry every instrumented layer uses.
  static Registry& global();

  /// Get-or-create by name. The returned reference is valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // --- Labeled instruments (low-cardinality dimensions) ---
  //
  // A labeled instrument is an ordinary instrument named `base{label}` —
  // it sorts next to its family in every snapshot and needs no separate
  // export shape. Lookup cost is one mutex-guarded map find per call (no
  // function-local-static caching is possible when the label varies), so
  // labeled updates belong on *rare* paths (drops, retries, rekeys) or
  // behind a reference resolved once and cached by the caller (the engine
  // caches a per-run resumes counter at submit time).
  //
  // Cardinality is capped per family: after kMaxLabelsPerFamily distinct
  // labels, further labels coalesce into `base{overflow}` — a registry
  // can never be blown up by an unbounded label domain (n^2 link pairs).
  static constexpr std::size_t kMaxLabelsPerFamily = 128;

  Counter& counter(std::string_view base, std::string_view label);
  Gauge& gauge(std::string_view base, std::string_view label);
  Histogram& histogram(std::string_view base, std::string_view label);

  /// Registers (or replaces) a snapshot-time probe.
  void register_probe(std::string_view name, Probe probe);

  /// One deterministic JSON object: sections sorted by instrument name.
  ///   {"counters":{...},"gauges":{...},"histograms":{"h":{count,sum,min,
  ///    max,p50,p90,p99}},"probes":{...}}
  [[nodiscard]] std::string snapshot_json() const;
  /// Same snapshot appended to an existing writer (as one value).
  void write_snapshot(JsonWriter& w) const;

  /// Structured capture of every instrument + probe (see Snapshot).
  [[nodiscard]] Snapshot snapshot() const;

  /// Zeroes every counter/gauge/histogram (probes are external and keep
  /// their own state). For tests and benches that window a region.
  void reset();

 private:
  /// Full instrument name of (base, label), enforcing the per-family cap
  /// under mu_: past the cap the label collapses to "overflow".
  std::string labeled_name(std::string_view base, std::string_view label);

  mutable std::mutex mu_;
  // node-based maps: instrument addresses are stable across inserts.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
  std::map<std::string, Probe, std::less<>> probes_;
  /// Distinct labels seen per family ("base" -> set of accepted labels).
  std::map<std::string, std::map<std::string, bool, std::less<>>, std::less<>> labels_;
};

/// RAII snapshot-delta guard: captures Registry state at construction so a
/// region (one matrix cell, one test body) can read exactly its own
/// increments — delta() is "everything since the guard was built",
/// independent of process-lifetime totals and with probes re-sampled on
/// both sides. Does not reset the registry: guards nest and never disturb
/// concurrent readers.
class ScopedSnapshotDelta {
 public:
  explicit ScopedSnapshotDelta(const Registry& registry = Registry::global())
      : registry_(registry), start_(registry.snapshot()) {}

  /// Increments between construction and now.
  [[nodiscard]] Snapshot delta() const { return registry_.snapshot().delta_since(start_); }
  /// The raw starting snapshot.
  [[nodiscard]] const Snapshot& start() const { return start_; }

 private:
  const Registry& registry_;
  Snapshot start_;
};

}  // namespace idgka::obs
