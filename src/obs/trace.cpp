#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "obs/json_writer.h"

namespace idgka::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
}  // namespace detail

namespace {

// ------------------------------------------------------------ clock source
//
// Two relaxed atomics, written fn-last on install and fn-first on clear.
// The producers (run-body threads) and the installer (the host thread that
// owns the scheduler) never race in practice: the sim installs the clock
// before submitting any run and uninstalls after the final drain.

std::atomic<ClockFn> g_clock_fn{nullptr};
std::atomic<const void*> g_clock_ctx{nullptr};

std::uint64_t steady_now_us() {
  static const auto t0 = std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now() - t0)
                                        .count());
}

// -------------------------------------------------------------- ring store

struct Ring {
  explicit Ring(std::string track_name, std::size_t capacity)
      : track(std::move(track_name)), slots(capacity) {}

  /// Copies out the live events, oldest first.
  [[nodiscard]] std::vector<Event> snapshot() const {
    const std::uint64_t n = next.load(std::memory_order_acquire);
    const std::uint64_t live = std::min<std::uint64_t>(n, slots.size());
    std::vector<Event> out;
    out.reserve(live);
    for (std::uint64_t i = n - live; i < n; ++i) {
      out.push_back(slots[i & (slots.size() - 1)]);
    }
    return out;
  }

  std::string track;
  std::vector<Event> slots;          ///< power-of-two capacity
  std::atomic<std::uint64_t> next{0};  ///< total events ever written
};

/// Registered rings + generation. clear() bumps the generation, which
/// invalidates every thread's cached ring pointer: the next emit lazily
/// registers a fresh ring, so two back-to-back runs both record from event
/// zero (the trace-determinism contract).
struct Recorder {
  std::mutex mu;
  std::vector<std::shared_ptr<Ring>> rings;
  std::uint64_t generation = 1;
  std::size_t capacity = 16384;
};

Recorder& recorder() {
  static Recorder* r = new Recorder();  // leaked: usable during teardown
  return *r;
}

struct ThreadState {
  std::shared_ptr<Ring> ring;
  std::uint64_t generation = 0;
  std::string track;  ///< pending name for the next ring registration
};

thread_local ThreadState t_state;

Ring& thread_ring() {
  Recorder& rec = recorder();
  ThreadState& st = t_state;
  if (!st.ring || st.generation != rec.generation) {
    const std::lock_guard<std::mutex> lock(rec.mu);
    std::string track = st.track.empty() ? std::string("thread") : st.track;
    st.ring = std::make_shared<Ring>(std::move(track), rec.capacity);
    st.generation = rec.generation;
    rec.rings.push_back(st.ring);
  }
  return *st.ring;
}

void do_emit(Phase phase, const char* name, const char* cat, std::uint64_t arg,
             bool has_arg) {
  Ring& ring = thread_ring();
  const std::uint64_t seq = ring.next.load(std::memory_order_relaxed);
  Event& slot = ring.slots[seq & (ring.slots.size() - 1)];
  slot.ts_us = now_us();
  slot.seq = seq;
  slot.name = name;
  slot.cat = cat;
  slot.arg = arg;
  slot.has_arg = has_arg;
  slot.phase = phase;
  ring.next.store(seq + 1, std::memory_order_release);
}

/// All live events across all rings, with their track names, ordered by
/// (timestamp, track, per-thread seq). Ties between identically-named
/// tracks fall back to ring registration order (stable sort), which is the
/// only nondeterministic input — the engine avoids it by making run track
/// names unique ("<name>#<id>").
struct TrackedEvent {
  const std::string* track;
  Event event;
};

std::vector<TrackedEvent> collect_sorted() {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    Recorder& rec = recorder();
    const std::lock_guard<std::mutex> lock(rec.mu);
    rings = rec.rings;
  }
  std::vector<TrackedEvent> events;
  for (const auto& ring : rings) {
    for (Event& e : ring->snapshot()) events.push_back({&ring->track, e});
  }
  std::stable_sort(events.begin(), events.end(),
                   [](const TrackedEvent& a, const TrackedEvent& b) {
                     if (a.event.ts_us != b.event.ts_us) return a.event.ts_us < b.event.ts_us;
                     if (*a.track != *b.track) return *a.track < *b.track;
                     return a.event.seq < b.event.seq;
                   });
  return events;
}

// --------------------------------------------------------------- crash dump

std::terminate_handler g_prev_terminate = nullptr;

void dump_to_stderr() {
  const std::string dump = dump_recent(64);
  if (dump.empty()) return;
  std::fputs("\n=== obs flight recorder (last events, oldest first) ===\n", stderr);
  std::fputs(dump.c_str(), stderr);
  std::fputs("=== end flight recorder ===\n", stderr);
  // Machine-readable companion: IDGKA_OBS_CRASH_JSON names a file that
  // receives the full ring contents as Chrome trace JSON on the way down —
  // what a human reads on stderr, tooling reads from here (trace_report
  // accepts it directly; the crash-dump death test validates it parses).
  const char* json_path = std::getenv("IDGKA_OBS_CRASH_JSON");
  if (json_path != nullptr && json_path[0] != '\0') {
    export_chrome_trace_file(json_path);
  }
}

[[noreturn]] void terminate_with_dump() {
  dump_to_stderr();
  if (g_prev_terminate != nullptr) g_prev_terminate();
  std::abort();
}

extern "C" void abort_with_dump(int) {
  // Best-effort: fprintf/malloc are not async-signal-safe, but SIGABRT
  // from assert() arrives synchronously on the failing thread and the
  // process is about to die anyway — the flight recorder's whole purpose.
  dump_to_stderr();
  std::signal(SIGABRT, SIG_DFL);
  std::raise(SIGABRT);
}

}  // namespace

// ------------------------------------------------------------- public API

std::uint64_t now_us() {
  const ClockFn fn = g_clock_fn.load(std::memory_order_acquire);
  if (fn != nullptr) return fn(g_clock_ctx.load(std::memory_order_acquire));
  return steady_now_us();
}

ScopedClock::ScopedClock(ClockFn fn, const void* ctx)
    : prev_fn_(g_clock_fn.load(std::memory_order_acquire)),
      prev_ctx_(g_clock_ctx.load(std::memory_order_acquire)) {
  g_clock_ctx.store(ctx, std::memory_order_release);
  g_clock_fn.store(fn, std::memory_order_release);
}

ScopedClock::~ScopedClock() {
  g_clock_fn.store(prev_fn_, std::memory_order_release);
  g_clock_ctx.store(prev_ctx_, std::memory_order_release);
}

void set_trace_enabled(bool enabled) {
  if (enabled) install_crash_dump();
  detail::g_trace_enabled.store(enabled, std::memory_order_relaxed);
}

namespace {
/// Startup default from the environment (evaluated once, at static init).
const bool g_env_enable = [] {
  const char* v = std::getenv("IDGKA_OBS_TRACE");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    set_trace_enabled(true);
  }
  // IDGKA_OBS_TRACE_FILE=<path> enables tracing AND exports the recorded
  // trace to <path> at normal process exit — any example or test becomes a
  // trace producer for tools/trace_report without code changes.
  const char* path = std::getenv("IDGKA_OBS_TRACE_FILE");
  if (path != nullptr && path[0] != '\0') {
    set_trace_enabled(true);
    static const std::string g_trace_path = path;
    std::atexit([] { export_chrome_trace_file(g_trace_path); });
  }
  return true;
}();
}  // namespace

void emit(Phase phase, const char* name, const char* cat) {
  if (!trace_enabled()) return;
  do_emit(phase, name, cat, 0, false);
}

void emit(Phase phase, const char* name, const char* cat, std::uint64_t arg) {
  if (!trace_enabled()) return;
  do_emit(phase, name, cat, arg, true);
}

void set_thread_track(std::string track) {
  ThreadState& st = t_state;
  st.track = std::move(track);
  if (st.ring && st.generation == recorder().generation) {
    // Ring already registered: rename it (single writer — this thread).
    const std::lock_guard<std::mutex> lock(recorder().mu);
    st.ring->track = st.track;
  }
}

void set_ring_capacity(std::size_t capacity) {
  std::size_t cap = 2;
  while (cap < capacity && cap < (1ULL << 30)) cap <<= 1;
  Recorder& rec = recorder();
  const std::lock_guard<std::mutex> lock(rec.mu);
  rec.capacity = cap;
}

void clear() {
  Recorder& rec = recorder();
  const std::lock_guard<std::mutex> lock(rec.mu);
  rec.rings.clear();
  ++rec.generation;
}

std::string export_chrome_trace() {
  const std::vector<TrackedEvent> events = collect_sorted();

  // Deterministic tid assignment: sorted track-name order.
  std::map<std::string, int> tids;
  for (const TrackedEvent& te : events) tids.emplace(*te.track, 0);
  int next_tid = 1;
  for (auto& [track, tid] : tids) tid = next_tid++;

  JsonWriter w;
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const auto& [track, tid] : tids) {
    w.begin_object();
    w.kv("name", "thread_name");
    w.kv("ph", "M");
    w.kv("pid", 1);
    w.kv("tid", tid);
    w.key("args").begin_object().kv("name", track).end_object();
    w.end_object();
  }
  for (const TrackedEvent& te : events) {
    const Event& e = te.event;
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", e.cat);
    const char* ph = e.phase == Phase::kBegin ? "B" : e.phase == Phase::kEnd ? "E" : "i";
    w.kv("ph", ph);
    if (e.phase == Phase::kInstant) w.kv("s", "t");  // thread-scoped instant
    w.kv("ts", e.ts_us);
    w.kv("pid", 1);
    w.kv("tid", tids.at(*te.track));
    if (e.has_arg) w.key("args").begin_object().kv("v", e.arg).end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  return w.take();
}

bool export_chrome_trace_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << export_chrome_trace() << '\n';
  return static_cast<bool>(out);
}

std::string dump_recent(std::size_t max_events) {
  std::vector<TrackedEvent> events = collect_sorted();
  if (events.size() > max_events) {
    events.erase(events.begin(), events.end() - static_cast<std::ptrdiff_t>(max_events));
  }
  std::string out;
  char line[256];
  for (const TrackedEvent& te : events) {
    const Event& e = te.event;
    const char* ph = e.phase == Phase::kBegin ? "B" : e.phase == Phase::kEnd ? "E" : "i";
    if (e.has_arg) {
      std::snprintf(line, sizeof line, "%12llu us  %-18s %s %s/%s arg=%llu\n",
                    static_cast<unsigned long long>(e.ts_us), te.track->c_str(), ph,
                    e.cat, e.name, static_cast<unsigned long long>(e.arg));
    } else {
      std::snprintf(line, sizeof line, "%12llu us  %-18s %s %s/%s\n",
                    static_cast<unsigned long long>(e.ts_us), te.track->c_str(), ph,
                    e.cat, e.name);
    }
    out += line;
  }
  return out;
}

void install_crash_dump() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_prev_terminate = std::set_terminate(terminate_with_dump);
    std::signal(SIGABRT, abort_with_dump);
  });
}

}  // namespace idgka::obs
