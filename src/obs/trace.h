// Trace spans + per-thread ring-buffer flight recorder.
//
// Every instrumented layer emits timestamped events — RAII spans
// (OBS_SPAN), instants (OBS_INSTANT) — into a fixed-capacity ring buffer
// owned by the emitting thread. Writes are lock-free: each thread appends
// to its own ring (a mutex is taken exactly once per thread, to register
// the ring). When the ring wraps, the oldest events are overwritten —
// flight-recorder semantics: the recorder always holds the last N events
// per thread, ready to be dumped on an uncaught exception / assertion
// failure (install_crash_dump) or exported as Chrome trace-event JSON
// (export_chrome_trace — open in Perfetto or chrome://tracing).
//
// Timestamps come from the active clock source: under the discrete-event
// scheduler the sim installs a virtual clock (ScopedClock over
// sim::Scheduler::now), so sim traces are a pure function of the seeds and
// two same-seed runs export byte-identical JSON (pinned by obs_test);
// without an installed clock, events are stamped from steady_clock.
//
// Cost discipline:
//   * compile time: building with IDGKA_OBS=0 turns every OBS_* macro into
//     nothing — no event structs, no branches, no strings in the binary;
//   * runtime: tracing is OFF by default; every macro's disabled cost is a
//     single relaxed load + branch (the ≤2% bench gate in BENCH_obs.json);
//   * enabled: one ring slot write, no allocation (after the first event
//     of a thread), no locks.
//
// Event names/categories must be string literals (or otherwise outlive the
// recorder) — the ring stores the pointers, not copies.
#pragma once

#ifndef IDGKA_OBS
#define IDGKA_OBS 1
#endif

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/registry.h"  // OBS_COUNT / OBS_RECORD resolve instruments

namespace idgka::obs {

// ------------------------------------------------------------ enable flags

namespace detail {
extern std::atomic<bool> g_trace_enabled;
}  // namespace detail

/// Single-branch runtime check every trace macro performs first.
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turns event recording on/off. Also honoured at startup from the
/// IDGKA_OBS_TRACE environment variable (any non-empty value but "0").
/// The first enable installs the crash-dump hooks (install_crash_dump).
void set_trace_enabled(bool enabled);

// ------------------------------------------------------------ clock source

/// Current trace timestamp in microseconds: the installed clock source, or
/// steady_clock (relative to process start) when none is installed.
[[nodiscard]] std::uint64_t now_us();

using ClockFn = std::uint64_t (*)(const void* ctx);

/// Installs `fn(ctx)` as the active clock source; restores the previous
/// source on destruction. The sim runners wrap each run in one of these
/// over the run's Scheduler so every event carries virtual time.
class ScopedClock {
 public:
  ScopedClock(ClockFn fn, const void* ctx);
  ~ScopedClock();
  ScopedClock(const ScopedClock&) = delete;
  ScopedClock& operator=(const ScopedClock&) = delete;

 private:
  ClockFn prev_fn_;
  const void* prev_ctx_;
};

// ------------------------------------------------------------------ events

enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };

struct Event {
  std::uint64_t ts_us = 0;
  std::uint64_t seq = 0;  ///< per-thread monotonic (survives ring wrap)
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t arg = 0;
  Phase phase = Phase::kInstant;
  bool has_arg = false;
};

/// Appends one event to the calling thread's ring (no-op when tracing is
/// disabled). Prefer the OBS_* macros, which compile out under
/// IDGKA_OBS=0.
void emit(Phase phase, const char* name, const char* cat);
void emit(Phase phase, const char* name, const char* cat, std::uint64_t arg);

/// Names the calling thread's track in exports and dumps. Call before the
/// thread's first event; the engine names each ProtocolRun thread
/// "<run-name>#<run-id>" so track names — and therefore exports — are
/// deterministic (thread registration order is not).
void set_thread_track(std::string track);

/// Ring capacity (events per thread) for rings created after the call.
/// Must be a power of two >= 2; default 16384.
void set_ring_capacity(std::size_t capacity);

/// Drops every registered ring and thread track and resets the capacity
/// default. Live threads lazily re-register on their next event. Called
/// between runs that must export identical traces from event zero.
void clear();

/// RAII span: kBegin at construction, kEnd at destruction (both no-ops
/// when tracing is disabled *at construction time*).
class Span {
 public:
  Span(const char* name, const char* cat) {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      emit(Phase::kBegin, name, cat);
    }
  }
  Span(const char* name, const char* cat, std::uint64_t arg) {
    if (trace_enabled()) {
      name_ = name;
      cat_ = cat;
      emit(Phase::kBegin, name, cat, arg);
    }
  }
  ~Span() {
    if (name_ != nullptr) emit(Phase::kEnd, name_, cat_);
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
};

// --------------------------------------------------------------- exporters

/// Chrome trace-event JSON over every recorded event, ordered by
/// (timestamp, track, per-thread sequence) with tracks numbered in sorted
/// name order — fully deterministic for a deterministic producer. Open the
/// output in Perfetto (ui.perfetto.dev) or chrome://tracing.
[[nodiscard]] std::string export_chrome_trace();
/// Writes export_chrome_trace() to `path`; returns false on I/O failure.
bool export_chrome_trace_file(const std::string& path);

/// Human-readable dump of the most recent `max_events` events across all
/// rings (oldest first) — the flight-recorder readout.
[[nodiscard]] std::string dump_recent(std::size_t max_events);

/// Installs the last-N-events dump on std::terminate (uncaught exception)
/// and SIGABRT (assert). Idempotent; chained to the previous terminate
/// handler. Installed automatically by the first set_trace_enabled(true).
void install_crash_dump();

}  // namespace idgka::obs

// ------------------------------------------------------------------ macros
//
// IDGKA_OBS=0 compiles every instrumentation site out entirely (the CI
// obs-off build catches #ifdef rot); otherwise the disabled-at-runtime
// cost is one relaxed load + branch per site.

#if IDGKA_OBS

#define IDGKA_OBS_CONCAT2(a, b) a##b
#define IDGKA_OBS_CONCAT(a, b) IDGKA_OBS_CONCAT2(a, b)

/// RAII span covering the enclosing scope.
#define OBS_SPAN(name, cat) \
  ::idgka::obs::Span IDGKA_OBS_CONCAT(obs_span_, __COUNTER__)(name, cat)
/// RAII span with a numeric argument attached to its begin event.
#define OBS_SPAN_ARG(name, cat, arg)                                 \
  ::idgka::obs::Span IDGKA_OBS_CONCAT(obs_span_, __COUNTER__)(       \
      name, cat, static_cast<std::uint64_t>(arg))
/// Point event.
#define OBS_INSTANT(name, cat)                                     \
  do {                                                             \
    if (::idgka::obs::trace_enabled())                             \
      ::idgka::obs::emit(::idgka::obs::Phase::kInstant, name, cat); \
  } while (0)
/// Point event with a numeric argument.
#define OBS_INSTANT_ARG(name, cat, arg)                             \
  do {                                                              \
    if (::idgka::obs::trace_enabled())                              \
      ::idgka::obs::emit(::idgka::obs::Phase::kInstant, name, cat,  \
                         static_cast<std::uint64_t>(arg));          \
  } while (0)
/// Names the calling thread's export track.
#define OBS_SET_THREAD_TRACK(track) ::idgka::obs::set_thread_track(track)
/// Bumps a process-wide registry counter; `name` must be a string
/// literal (the instrument is resolved once per site).
#define OBS_COUNT(name, n)                                                  \
  do {                                                                      \
    static ::idgka::obs::Counter& obs_counter_site =                        \
        ::idgka::obs::Registry::global().counter(name);                     \
    obs_counter_site.add(static_cast<std::uint64_t>(n));                    \
  } while (0)
/// Records into a process-wide registry histogram (same resolution rule).
#define OBS_RECORD(name, v)                                                 \
  do {                                                                      \
    static ::idgka::obs::Histogram& obs_hist_site =                         \
        ::idgka::obs::Registry::global().histogram(name);                   \
    obs_hist_site.record(static_cast<std::uint64_t>(v));                    \
  } while (0)
/// Bumps a labeled counter (`base{label}`). The label is resolved on every
/// call (mutex + map lookup) — rare-path sites only (drops, retries); hot
/// paths should cache the Counter& from Registry::counter(base, label).
#define OBS_COUNT_LABELED(base, label, n)                                   \
  ::idgka::obs::Registry::global().counter(base, label).add(                \
      static_cast<std::uint64_t>(n))

#else  // IDGKA_OBS == 0

#define OBS_SPAN(name, cat) \
  do {                      \
  } while (0)
#define OBS_SPAN_ARG(name, cat, arg) \
  do {                               \
  } while (0)
#define OBS_INSTANT(name, cat) \
  do {                         \
  } while (0)
#define OBS_INSTANT_ARG(name, cat, arg) \
  do {                                  \
  } while (0)
#define OBS_SET_THREAD_TRACK(track) \
  do {                              \
  } while (0)
#define OBS_COUNT(name, n) \
  do {                     \
  } while (0)
#define OBS_RECORD(name, v) \
  do {                      \
  } while (0)
#define OBS_COUNT_LABELED(base, label, n) \
  do {                                    \
  } while (0)

#endif  // IDGKA_OBS
