#include "obs/json_reader.h"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>

namespace idgka::obs::json {

// ----------------------------------------------------------------- accessors

namespace {
[[noreturn]] void kind_error(const char* wanted) {
  throw std::logic_error(std::string("JsonValue: not a ") + wanted);
}
const JsonValue& null_value() {
  static const JsonValue v;
  return v;
}
}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double JsonValue::as_double() const {
  switch (kind_) {
    case Kind::kUint: return static_cast<double>(uint_);
    case Kind::kInt: return static_cast<double>(int_);
    case Kind::kDouble: return double_;
    default: kind_error("number");
  }
}

std::uint64_t JsonValue::as_uint() const {
  if (kind_ == Kind::kUint) return uint_;
  if (kind_ == Kind::kInt && int_ >= 0) return static_cast<std::uint64_t>(int_);
  kind_error("unsigned integer");
}

std::int64_t JsonValue::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kUint && uint_ <= static_cast<std::uint64_t>(INT64_MAX)) {
    return static_cast<std::int64_t>(uint_);
  }
  kind_error("integer");
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return *object_;
}

const JsonValue& JsonValue::operator[](std::string_view key) const {
  if (kind_ != Kind::kObject) return null_value();
  const auto it = object_->find(key);
  return it == object_->end() ? null_value() : it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object");
  const auto it = object_->find(key);
  if (it == object_->end()) throw std::out_of_range("JsonValue: no field " + std::string(key));
  return it->second;
}

bool JsonValue::has(std::string_view key) const {
  return kind_ == Kind::kObject && object_->contains(key);
}

// -------------------------------------------------------------------- parser

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing garbage");
    return v;
  }

 private:
  [[noreturn]] void fail(const char* what) const { throw JsonParseError(what, pos_); }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.insert_or_assign(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue(std::move(obj));
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue(std::move(arr));
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The writer only emits \u00XX control escapes; anything wider
          // (incl. surrogate pairs) degrades to '?' rather than lying.
          if (code < 0x80) out.push_back(static_cast<char>(code));
          else out.push_back('?');
          break;
        }
        default: fail("bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)) {
      ++pos_;
    }
    bool is_double = false;
    if (pos_ < text_.size() && (text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      while (pos_ < text_.size()) {
        const char c = text_[pos_];
        if ((std::isdigit(static_cast<unsigned char>(c)) == 0) && c != '.' && c != 'e' &&
            c != 'E' && c != '+' && c != '-') {
          break;
        }
        ++pos_;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") fail("bad number");
    if (!is_double) {
      if (token[0] == '-') {
        std::int64_t v = 0;
        const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
        if (ec != std::errc() || p != token.data() + token.size()) fail("integer out of range");
        return JsonValue(v);
      }
      std::uint64_t v = 0;
      const auto [p, ec] = std::from_chars(token.data(), token.data() + token.size(), v);
      if (ec != std::errc() || p != token.data() + token.size()) fail("integer out of range");
      return JsonValue(v);
    }
    errno = 0;
    char* end = nullptr;
    const std::string owned(token);
    const double v = std::strtod(owned.c_str(), &end);
    if (errno == ERANGE || end != owned.c_str() + owned.size()) fail("bad double");
    return JsonValue(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void flatten_into(const JsonValue& v, std::string& path, std::map<std::string, double>& out) {
  switch (v.kind()) {
    case JsonValue::Kind::kUint:
    case JsonValue::Kind::kInt:
    case JsonValue::Kind::kDouble:
      out.emplace(path, v.as_double());
      return;
    case JsonValue::Kind::kArray: {
      const JsonArray& arr = v.as_array();
      for (std::size_t i = 0; i < arr.size(); ++i) {
        const std::size_t mark = path.size();
        if (!path.empty()) path.push_back('.');
        path += std::to_string(i);
        flatten_into(arr[i], path, out);
        path.resize(mark);
      }
      return;
    }
    case JsonValue::Kind::kObject: {
      for (const auto& [key, child] : v.as_object()) {
        const std::size_t mark = path.size();
        if (!path.empty()) path.push_back('.');
        path += key;
        flatten_into(child, path, out);
        path.resize(mark);
      }
      return;
    }
    default: return;  // null/bool/string carry no numeric leaf
  }
}

}  // namespace

JsonValue parse(std::string_view text) { return Parser(text).parse_document(); }

std::map<std::string, double> flatten_numbers(const JsonValue& root) {
  std::map<std::string, double> out;
  std::string path;
  flatten_into(root, path, out);
  return out;
}

}  // namespace idgka::obs::json
