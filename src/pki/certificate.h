// Minimal certificate infrastructure for the certificate-based baselines.
//
// The paper's "BD with ECDSA" and "BD with DSA" protocols require each user
// to transmit its certificate and receive + verify n-1 peer certificates.
// This module provides a compact X.509-flavoured certificate: a serialized
// to-be-signed (TBS) section carrying the subject identity and public key,
// signed by a certificate authority with DSA or ECDSA.
//
// Wire sizes in the paper's accounting: 263-byte DSA certificate and
// 86-byte ECDSA certificate (Table 3); the energy model prices certificates
// with those constants while the simulator additionally tracks the true
// serialized size.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sig/dsa.h"
#include "sig/ecdsa.h"

namespace idgka::pki {

using mpint::BigInt;

/// Signature algorithm used by a CA / certificate.
enum class CertAlgorithm : std::uint8_t { kDsa = 1, kEcdsa = 2 };

/// A compact certificate binding a 32-bit subject identity to a public key.
struct Certificate {
  CertAlgorithm algorithm = CertAlgorithm::kDsa;
  std::uint32_t subject_id = 0;
  std::uint64_t serial = 0;
  std::uint64_t not_before = 0;  ///< epoch seconds
  std::uint64_t not_after = 0;   ///< epoch seconds
  std::vector<std::uint8_t> subject_public_key;  ///< serialized key material
  // CA signature over the TBS bytes.
  BigInt sig_r;
  BigInt sig_s;

  /// Serialized to-be-signed bytes (everything except the signature).
  [[nodiscard]] std::vector<std::uint8_t> tbs_bytes() const;
  /// Full serialized size in bytes (TBS + signature components).
  [[nodiscard]] std::size_t wire_size() const;
};

/// A certificate authority holding a DSA or ECDSA issuing key.
class CertificateAuthority {
 public:
  /// DSA-issuing CA; derives its own mod-p context.
  CertificateAuthority(sig::DsaParams params, mpint::Rng& rng);
  /// DSA-issuing CA sharing a caller-owned mod-p context for `params.p`
  /// (gka::Authority already caches one for the same parameters).
  CertificateAuthority(sig::DsaParams params,
                       std::shared_ptr<const mpint::ModContext> ctx_p, mpint::Rng& rng);
  /// ECDSA-issuing CA on the given curve.
  CertificateAuthority(const ec::Curve& curve, mpint::Rng& rng);

  [[nodiscard]] CertAlgorithm algorithm() const { return algorithm_; }

  /// Issues a certificate for (subject_id, public key bytes).
  [[nodiscard]] Certificate issue(std::uint32_t subject_id,
                                  std::vector<std::uint8_t> public_key, mpint::Rng& rng,
                                  std::uint64_t validity_seconds = 365ULL * 86400);

  /// Verifies a certificate issued by this CA (signature + validity window).
  [[nodiscard]] bool verify(const Certificate& cert, std::uint64_t at_time = 0) const;

 private:
  CertAlgorithm algorithm_;
  // DSA state
  std::optional<sig::DsaParams> dsa_params_;
  std::shared_ptr<const mpint::ModContext> dsa_ctx_;  ///< cached mod-p context
  std::optional<sig::DsaKeyPair> dsa_key_;
  // ECDSA state
  const ec::Curve* curve_ = nullptr;
  std::optional<sig::EcdsaKeyPair> ec_key_;
  std::uint64_t next_serial_ = 1;
  std::uint64_t now_ = 1'750'000'000;  ///< simulated clock (epoch seconds)
};

/// Serializes an ECDSA public point (uncompressed x||y).
[[nodiscard]] std::vector<std::uint8_t> encode_ec_public(const ec::Curve& curve,
                                                         const ec::Point& pub);
/// Parses the encoding produced by encode_ec_public.
[[nodiscard]] std::optional<ec::Point> decode_ec_public(const ec::Curve& curve,
                                                        std::span<const std::uint8_t> bytes);

/// Serializes a DSA public key y.
[[nodiscard]] std::vector<std::uint8_t> encode_dsa_public(const sig::DsaParams& params,
                                                          const BigInt& y);
[[nodiscard]] std::optional<BigInt> decode_dsa_public(const sig::DsaParams& params,
                                                      std::span<const std::uint8_t> bytes);

}  // namespace idgka::pki
