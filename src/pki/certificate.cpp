#include "pki/certificate.h"

#include <stdexcept>

namespace idgka::pki {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

}  // namespace

std::vector<std::uint8_t> Certificate::tbs_bytes() const {
  std::vector<std::uint8_t> out;
  out.push_back(static_cast<std::uint8_t>(algorithm));
  put_u32(out, subject_id);
  put_u64(out, serial);
  put_u64(out, not_before);
  put_u64(out, not_after);
  put_u32(out, static_cast<std::uint32_t>(subject_public_key.size()));
  out.insert(out.end(), subject_public_key.begin(), subject_public_key.end());
  return out;
}

std::size_t Certificate::wire_size() const {
  return tbs_bytes().size() + sig_r.to_bytes_be().size() + sig_s.to_bytes_be().size();
}

CertificateAuthority::CertificateAuthority(sig::DsaParams params, mpint::Rng& rng)
    : CertificateAuthority(std::move(params), nullptr, rng) {}

CertificateAuthority::CertificateAuthority(sig::DsaParams params,
                                           std::shared_ptr<const mpint::ModContext> ctx_p,
                                           mpint::Rng& rng)
    : algorithm_(CertAlgorithm::kDsa),
      dsa_params_(std::move(params)),
      dsa_ctx_(std::move(ctx_p)) {
  if (!dsa_ctx_) dsa_ctx_ = std::make_shared<const mpint::ModContext>(dsa_params_->p);
  dsa_key_ = sig::dsa_generate_keypair(*dsa_params_, *dsa_ctx_, rng);
}

CertificateAuthority::CertificateAuthority(const ec::Curve& curve, mpint::Rng& rng)
    : algorithm_(CertAlgorithm::kEcdsa), curve_(&curve) {
  ec_key_ = sig::ecdsa_generate_keypair(curve, rng);
}

Certificate CertificateAuthority::issue(std::uint32_t subject_id,
                                        std::vector<std::uint8_t> public_key,
                                        mpint::Rng& rng, std::uint64_t validity_seconds) {
  Certificate cert;
  cert.algorithm = algorithm_;
  cert.subject_id = subject_id;
  cert.serial = next_serial_++;
  cert.not_before = now_;
  cert.not_after = now_ + validity_seconds;
  cert.subject_public_key = std::move(public_key);
  const auto tbs = cert.tbs_bytes();
  if (algorithm_ == CertAlgorithm::kDsa) {
    const auto sig = sig::dsa_sign(*dsa_params_, *dsa_ctx_, *dsa_key_, tbs, rng);
    cert.sig_r = sig.r;
    cert.sig_s = sig.s;
  } else {
    const auto sig = sig::ecdsa_sign(*curve_, *ec_key_, tbs, rng);
    cert.sig_r = sig.r;
    cert.sig_s = sig.s;
  }
  return cert;
}

bool CertificateAuthority::verify(const Certificate& cert, std::uint64_t at_time) const {
  if (cert.algorithm != algorithm_) return false;
  const std::uint64_t when = at_time == 0 ? now_ : at_time;
  if (when < cert.not_before || when > cert.not_after) return false;
  const auto tbs = cert.tbs_bytes();
  if (algorithm_ == CertAlgorithm::kDsa) {
    return sig::dsa_verify(*dsa_params_, *dsa_ctx_, dsa_key_->y, tbs,
                           sig::DsaSignature{cert.sig_r, cert.sig_s});
  }
  return sig::ecdsa_verify(*curve_, ec_key_->q, tbs,
                           sig::EcdsaSignature{cert.sig_r, cert.sig_s});
}

std::vector<std::uint8_t> encode_ec_public(const ec::Curve& curve, const ec::Point& pub) {
  if (pub.infinity) throw std::invalid_argument("encode_ec_public: infinity");
  const std::size_t fb = curve.field_bytes();
  std::vector<std::uint8_t> out;
  out.reserve(1 + 2 * fb);
  out.push_back(0x04);  // uncompressed
  const auto xb = pub.x.to_bytes_be(fb);
  const auto yb = pub.y.to_bytes_be(fb);
  out.insert(out.end(), xb.begin(), xb.end());
  out.insert(out.end(), yb.begin(), yb.end());
  return out;
}

std::optional<ec::Point> decode_ec_public(const ec::Curve& curve,
                                          std::span<const std::uint8_t> bytes) {
  const std::size_t fb = curve.field_bytes();
  if (bytes.size() != 1 + 2 * fb || bytes[0] != 0x04) return std::nullopt;
  ec::Point pt{BigInt::from_bytes_be(bytes.subspan(1, fb)),
               BigInt::from_bytes_be(bytes.subspan(1 + fb, fb)), false};
  if (!curve.is_on_curve(pt)) return std::nullopt;
  return pt;
}

std::vector<std::uint8_t> encode_dsa_public(const sig::DsaParams& params, const BigInt& y) {
  return y.to_bytes_be((params.p.bit_length() + 7) / 8);
}

std::optional<BigInt> decode_dsa_public(const sig::DsaParams& params,
                                        std::span<const std::uint8_t> bytes) {
  if (bytes.size() != (params.p.bit_length() + 7) / 8) return std::nullopt;
  BigInt y = BigInt::from_bytes_be(bytes);
  if (y <= BigInt{1} || y >= params.p) return std::nullopt;
  return y;
}

}  // namespace idgka::pki
